"""The input-queued virtual-channel router engine.

Implements the single-cycle router of Section 3.2: per-input VC
buffers, credit-based flow control, per-packet routing decisions made
under a greedy or sequential allocator, per-output switch arbitration,
and switch speedup.

Each cycle consists of one or more *switch sub-iterations* (the
speedup): in each, every output port accepts at most one flit from the
head of a requesting input VC into its per-VC output staging FIFO, and
newly exposed heads are routed between sub-iterations.  Afterwards the
*wire phase* moves at most one staged flit per channel onto the wire
(the channel is the serialization point).  With unbounded speedup the
router is never the bottleneck, which is the paper's stated
configuration ("we use input-queued routers but provide sufficient
switch speedup").

Engines are not polled: they publish their activation transitions to
the simulator — ``sim._busy_engines`` tracks routers holding buffered
flits (routing/switch work) and ``sim._wire_engines`` tracks routers
with staged output flits (wire work) — so the active-set kernel visits
only routers that can possibly do something each cycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from .buffers import (
    CHANNEL_INPUT,
    CHANNEL_PORT,
    EJECTION_PORT,
    INJECTION_INPUT,
    InputVC,
    OutPort,
)
from .packet import Flit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..topologies.base import Channel
    from .simulator import Simulator


class RouterEngine:
    """Cycle-by-cycle state of one router."""

    __slots__ = (
        "sim",
        "router_id",
        "in_ports",
        "in_port_kind",
        "in_port_source",
        "out_ports",
        "_port_of_channel",
        "_ej_port_of_terminal",
        "active",
        "_unrouted",
        "_requests",
        "_staged_ports",
        "_rr_offset",
        "_num_invcs",
        "_resweep",
        "_resweep_cycle",
        "_event",
        "_pipes",
        "_wheel",
        "_active_pipes",
        "_credit_latency",
        "_channel_latency",
        "_period",
        "_fault_state",
        "_base_vcs",
    )

    def __init__(self, sim: "Simulator", router_id: int) -> None:
        self.sim = sim
        self.router_id = router_id
        # Whether the owning simulator runs the event kernel; the
        # incremental _unrouted/_requests views are maintained only
        # then (the polling kernel recomputes from ``active``).
        self._event = sim._event_driven
        # Input ports: per port, a list of InputVC (channel inputs get
        # the algorithm's VC count; injection inputs are single-FIFO).
        self.in_ports: List[List[InputVC]] = []
        self.in_port_kind: List[int] = []
        # For channel inputs: the feeding channel index (credit return
        # path); for injection inputs: the terminal id.
        self.in_port_source: List[int] = []
        self.out_ports: List[OutPort] = []
        self._port_of_channel: Dict[int, int] = {}
        self._ej_port_of_terminal: Dict[int, int] = {}
        # Ordered set of non-empty input VCs.
        self.active: Dict[InputVC, None] = {}
        # Incremental views of ``active`` kept for the fused event
        # path: input VCs whose head still needs a routing decision,
        # and per-output-port sets of input VCs with a locked route
        # (the standing switch requests).  The legacy polling phases
        # recompute both from ``active`` instead of reading these.
        self._unrouted: Dict[InputVC, None] = {}
        self._requests: Dict[OutPort, Dict[InputVC, None]] = {}
        # Ordered set of output ports with staged flits.
        self._staged_ports: Dict[OutPort, None] = {}
        self._rr_offset = 0
        self._num_invcs = 0
        # Narrow re-sweep state for route_switch: the outputs worth
        # re-examining in a follow-up sub-iteration, valid only while
        # ``_resweep_cycle`` matches the current cycle.
        self._resweep: Dict[OutPort, None] = {}
        self._resweep_cycle = -1

    # ------------------------------------------------------------------
    # Construction (called by the Simulator)
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Snapshot stable simulator references once construction is
        complete, so the per-cycle event phases don't re-derive them on
        every call."""
        sim = self.sim
        self._pipes = sim.pipes
        self._wheel = sim._wheel
        self._active_pipes = sim._active_pipes
        cfg = sim.config
        self._credit_latency = cfg.credit_latency
        self._channel_latency = cfg.channel_latency
        self._period = cfg.channel_period
        self._fault_state = sim.fault_state
        # VCs per message class: routing algorithms pick a vc within
        # their own count, and a packet's msg_class shifts it into that
        # class's disjoint VC partition on inter-router channels.
        self._base_vcs = sim.algorithm.num_vcs

    def add_channel_input(self, channel_index: int, num_vcs: int, depth: int) -> int:
        port = len(self.in_ports)
        vcs = [InputVC(port, vc, depth, self._num_invcs + vc) for vc in range(num_vcs)]
        self._num_invcs += num_vcs
        self.in_ports.append(vcs)
        self.in_port_kind.append(CHANNEL_INPUT)
        self.in_port_source.append(channel_index)
        return port

    def add_injection_input(self, terminal: int, depth: int) -> int:
        port = len(self.in_ports)
        self.in_ports.append([InputVC(port, 0, depth, self._num_invcs)])
        self._num_invcs += 1
        self.in_port_kind.append(INJECTION_INPUT)
        self.in_port_source.append(terminal)
        return port

    def add_channel_output(
        self, channel_index: int, num_vcs: int, vc_depth: int, staging_depth: int
    ) -> int:
        port = len(self.out_ports)
        self.out_ports.append(
            OutPort(
                port,
                CHANNEL_PORT,
                num_vcs,
                vc_depth,
                staging_depth,
                channel_index=channel_index,
            )
        )
        self._port_of_channel[channel_index] = port
        return port

    def add_ejection_output(self, terminal: int, num_vcs: int, staging_depth: int) -> int:
        port = len(self.out_ports)
        self.out_ports.append(
            OutPort(port, EJECTION_PORT, num_vcs, 0, staging_depth, terminal=terminal)
        )
        self._ej_port_of_terminal[terminal] = port
        return port

    # ------------------------------------------------------------------
    # Lookup helpers for routing algorithms
    # ------------------------------------------------------------------
    def port_for_channel(self, channel: "Channel") -> int:
        """Output-port index realizing ``channel`` (which must leave
        this router)."""
        return self._port_of_channel[channel.index]

    def ejection_port(self, terminal: int) -> int:
        """Output-port index of the ejection port serving ``terminal``."""
        return self._ej_port_of_terminal[terminal]

    def channel_occupancy(self, channel: "Channel") -> int:
        """Estimated queue length (all VCs) of the output channel.

        Reads the incrementally maintained counter; O(1) per call
        (routing algorithms poll this for every candidate of every
        decision)."""
        return self.out_ports[self._port_of_channel[channel.index]].occ

    def port_occupancy(self, port: int) -> int:
        """Estimated queue length (all VCs) of output ``port``."""
        out = self.out_ports[port]
        return 0 if out.kind == EJECTION_PORT else out.occ

    # ------------------------------------------------------------------
    # Per-cycle phases
    # ------------------------------------------------------------------
    def deliver(self, in_port: int, vc: int, flit: Flit) -> None:
        """Accept a flit arriving from a channel (or injection)."""
        invc = self.in_ports[in_port][vc]
        fifo = invc.fifo
        if len(fifo) >= invc.depth:
            raise AssertionError(
                f"buffer overflow at router {self.router_id} port {in_port} vc {vc}: "
                f"credit protocol violated"
            )
        if fifo:
            fifo.append(flit)
            return
        fifo.append(flit)
        # The VC just went non-empty: a head awaiting a route, or the
        # next flits of a packet whose route is already locked.
        if self._event:
            port = invc.route_port
            if port is None:
                self._unrouted[invc] = None
            else:
                requests = self._requests
                out = self.out_ports[port]
                members = requests.get(out)
                if members is None:
                    requests[out] = {invc: None}
                else:
                    members[invc] = None
        active = self.active
        if not active:
            # Idle -> busy transition: tell the kernel this router now
            # has routing/switch work.
            self.sim._busy_engines[self.router_id] = self
        active[invc] = None

    def routing_phase(self, now: int) -> None:
        """Make routing decisions for head flits that need one."""
        pending = [invc for invc in self.active if invc.route_port is None]
        if not pending:
            return
        num_in = len(self.in_ports)
        offset = self._rr_offset
        self._rr_offset = (offset + 1) % max(num_in, 1)
        if len(pending) > 1:
            pending.sort(key=lambda v: ((v.in_port - offset) % num_in, v.vc))
        allocator = self.sim.allocator
        algorithm = self.sim.algorithm
        self.sim._route_calls += len(pending)
        allocator.begin_cycle()
        for invc in pending:
            head = invc.fifo[0]
            packet = head.packet
            port, vc = algorithm.route(self, packet)
            out = self.out_ports[port]
            if packet.msg_class and out.kind == CHANNEL_PORT:
                # Message-class VC partitioning: the algorithm's choice
                # lands in the packet's own class partition.  Ejection
                # ports are exempt (the sink always drains, so classes
                # cannot deadlock through it — and the fused kernel's
                # inline ejection assumes vc 0).
                vc += packet.msg_class * self._base_vcs
            if not 0 <= vc < out.num_vcs:
                raise AssertionError(
                    f"{algorithm.name} chose vc {vc} outside 0..{out.num_vcs - 1}"
                )
            invc.route_port = port
            invc.route_vc = vc
            allocator.record(out, vc, packet.size)
        allocator.end_cycle()

    def _drop_request(self, invc: InputVC, out: OutPort) -> None:
        """Withdraw ``invc``'s standing switch request on ``out``.

        Tolerates absence: under the polling kernel routing decisions
        are made by the legacy ``routing_phase``, which does not file
        standing requests.
        """
        requests = self._requests
        members = requests.get(out)
        if members is not None:
            members.pop(invc, None)
            if not members:
                del requests[out]

    def route_switch(self, now: int) -> int:
        """Fused routing + switch sub-iteration used by the event
        kernel: route every head awaiting a decision, then run one
        switch sub-iteration over the standing requests.

        Returns 0 if no flit moved, 1 if flits moved but another
        sub-iteration provably cannot move more (every output that
        moved has no remaining requester and no new head was exposed —
        blocked outputs stay blocked because nothing else mutates this
        engine's state within the cycle), and 2 if flits moved and a
        further sub-iteration might move more.

        Bit-identical to ``routing_phase`` followed by
        ``switch_subiter``: the pending heads are sorted by the same
        round-robin key before routing (so the shared route RNG is
        drawn in the same order), and switch winners are picked by the
        same total-order arbitration key (so candidate enumeration
        order is irrelevant).  The sub-iterations it declines (return
        value 1) are exactly those in which the polling kernel routes
        and switches nothing at this router.

        Follow-up sub-iterations within one cycle (the calls after a
        return of 2) sweep only the outputs that moved a flit in the
        previous sub-iteration plus outputs gaining a newly routed
        head: within a cycle an output's requesters, staging and
        ownership change only through its *own* switch progress, so a
        blocked output stays blocked and re-examining it would mutate
        nothing and draw nothing — skipping it is bit-identical.
        """
        sim = self.sim
        unrouted = self._unrouted
        requests = self._requests
        # The narrow re-sweep set, valid only for follow-up calls in
        # the same cycle (a 2-return from an earlier sub-iteration).
        sweep = self._resweep if self._resweep_cycle == now else None
        if unrouted:
            # ``route_port is None and fifo`` filters entries left
            # stale by interleaved legacy-phase driving (tests that
            # call routing_phase/switch_subiter by hand).
            pending = [
                invc for invc in unrouted if invc.route_port is None and invc.fifo
            ]
            unrouted.clear()
            if pending:
                num_in = len(self.in_ports)
                offset = self._rr_offset
                self._rr_offset = (offset + 1) % max(num_in, 1)
                if len(pending) > 1:
                    pending.sort(key=lambda v: ((v.in_port - offset) % num_in, v.vc))
                algorithm = sim.algorithm
                route = algorithm.route_event
                inline_eject = algorithm.inline_eject
                eject_ports = self._ej_port_of_terminal
                rid = self.router_id
                out_ports = self.out_ports
                sim._route_calls += len(pending)
                # The allocator's pending debits are applied inline:
                # immediately for a sequential allocator (each decision
                # sees the previous ones), en masse afterwards for a
                # greedy one — exactly begin_cycle/record/end_cycle.
                debits = None if algorithm.sequential else []
                for invc in pending:
                    packet = invc.fifo[0].packet
                    if inline_eject and packet.dst_router == rid:
                        # An at-destination head ejects unconditionally
                        # (no RNG draw, no packet mutation) for every
                        # algorithm advertising inline_eject; resolving
                        # it here skips the route_event dispatch.
                        port = eject_ports[packet.dst]
                        vc = 0
                        out = out_ports[port]
                    else:
                        port, vc = route(self, packet)
                        out = out_ports[port]
                        if packet.msg_class and out.kind == CHANNEL_PORT:
                            # Shift into the class's VC partition
                            # (mirrors routing_phase; ejection exempt).
                            vc += packet.msg_class * self._base_vcs
                        if not 0 <= vc < out.num_vcs:
                            raise AssertionError(
                                f"{algorithm.name} chose vc {vc} outside "
                                f"0..{out.num_vcs - 1}"
                            )
                    invc.route_port = port
                    invc.route_vc = vc
                    size = packet.size
                    if debits is None:
                        out.pending[vc] += size
                        out.occ += size
                    else:
                        debits.append((out, vc, size))
                    members = requests.get(out)
                    if members is None:
                        requests[out] = {invc: None}
                    else:
                        members[invc] = None
                    if sweep is not None:
                        sweep[out] = None
                if debits:
                    for out, vc, size in debits:
                        out.pending[vc] += size
                        out.occ += size
        if not requests:
            self._resweep_cycle = -1
            return 0
        moved = 0
        more = False
        total = self._num_invcs
        active = self.active
        kinds = self.in_port_kind
        sources = self.in_port_source
        pipes = self._pipes
        now_credit = now + self._credit_latency
        wheel = self._wheel
        active_pipes = self._active_pipes
        staged = self._staged_ports
        wire_engines = sim._wire_engines
        busy_engines = sim._busy_engines
        stalled_sources = sim._stalled_sources
        active_sources = sim._active_sources
        router_id = self.router_id
        resweep = {}
        if sweep is None:
            targets = list(requests.items())
        else:
            # An output may have left ``requests`` since it was noted
            # (its last member moved out) — skip it.
            targets = [
                (out, requests[out]) for out in sweep if out in requests
            ]
        for out, members in targets:
            owner = out.owner
            staging = out.staging
            depth = out.staging_depth
            if len(members) == 1:
                # Overwhelmingly common: a single standing requester.
                (winner,) = members
                vc = winner.route_vc
                if len(staging[vc]) >= depth:
                    continue
                holder = owner[vc]
                flit = winner.fifo[0]
                if flit.is_head:
                    if holder is not None:
                        continue
                elif holder is not flit.packet:
                    continue
            else:
                sendable = []
                for invc in members:
                    vc = invc.route_vc
                    if len(staging[vc]) >= depth:
                        continue
                    holder = owner[vc]
                    flit = invc.fifo[0]
                    if flit.is_head:
                        if holder is not None:
                            continue
                    elif holder is not flit.packet:
                        continue
                    sendable.append(invc)
                if not sendable:
                    continue
                winner = sendable[0]
                if len(sendable) > 1:
                    # Manual argmin over the round-robin key (the same
                    # total order min() walks; orders are distinct per
                    # input VC, so there are no ties to break).
                    pointer = out.rr_pointer
                    best = (winner.order - pointer) % total
                    for cand in sendable:
                        key = (cand.order - pointer) % total
                        if key < best:
                            best = key
                            winner = cand
            out.rr_pointer = (winner.order + 1) % total
            # --- inline of _switch_flit, minus the polling-only
            # bookkeeping recomputation ---
            fifo = winner.fifo
            flit = fifo.popleft()
            vc = winner.route_vc
            out.pending[vc] -= 1
            if flit.is_head:
                owner[vc] = flit.packet
            if flit.is_tail:
                owner[vc] = None
                winner.route_port = None
                winner.route_vc = None
                del members[winner]
                if members:
                    more = True
                else:
                    del requests[out]
                if fifo:
                    # The next packet's head is exposed.
                    unrouted[winner] = None
                    more = True
            elif not fifo:
                # Mid-packet stall: the rest is still upstream.
                del members[winner]
                if members:
                    more = True
                else:
                    del requests[out]
            elif members:
                more = True
            if members:
                # This output moved and still has standing requesters:
                # it is the only kind of output (besides one gaining a
                # newly routed head) that can move again next
                # sub-iteration.
                resweep[out] = None
            staging[vc].append(flit)
            if not staged:
                wire_engines[router_id] = self
            staged[out] = None
            # Return a credit upstream for the freed input slot.
            if kinds[winner.in_port] == CHANNEL_INPUT:
                feed = pipes[sources[winner.in_port]]
                feed.credits.append((now_credit, winner.vc))
                active_pipes[feed] = None
                slot = wheel.get(now_credit)
                if slot is None:
                    wheel[now_credit] = [feed]
                elif slot[-1] is not feed:
                    slot.append(feed)
            elif stalled_sources:
                # An injection-FIFO slot was freed: wake the terminal
                # if its source queue is parked on a full FIFO.
                terminal = sources[winner.in_port]
                if terminal in stalled_sources:
                    del stalled_sources[terminal]
                    active_sources[terminal] = None
            if not fifo:
                del active[winner]
                if not active:
                    del busy_engines[router_id]
            moved = 1
        if moved and more:
            self._resweep = resweep
            self._resweep_cycle = now
            return 2
        self._resweep_cycle = -1
        return moved

    def switch_subiter(self, now: int) -> bool:
        """One speedup sub-iteration: every output port accepts at most
        one flit from a requesting input head into its staging FIFO.
        Returns whether any flit moved."""
        if not self.active:
            return False
        requests: Dict[int, List[InputVC]] = {}
        for invc in self.active:
            port = invc.route_port
            if port is None:
                continue
            requests.setdefault(port, []).append(invc)
        if not requests:
            return False
        moved = False
        total = self._num_invcs
        for port, candidates in requests.items():
            out = self.out_ports[port]
            owner = out.owner
            staging = out.staging
            depth = out.staging_depth
            sendable = []
            for invc in candidates:
                vc = invc.route_vc
                if len(staging[vc]) >= depth:
                    continue
                holder = owner[vc]
                flit = invc.fifo[0]
                if flit.is_head:
                    if holder is not None:
                        continue
                elif holder is not flit.packet:
                    continue
                sendable.append(invc)
            if not sendable:
                continue
            if len(sendable) == 1:
                winner = sendable[0]
            else:
                pointer = out.rr_pointer
                winner = min(sendable, key=lambda v: (v.order - pointer) % total)
            out.rr_pointer = (winner.order + 1) % total
            self._switch_flit(winner, out)
            moved = True
        return moved

    def _switch_flit(self, invc: InputVC, out: OutPort) -> None:
        """Move one flit from an input VC into output staging."""
        fifo = invc.fifo
        flit = fifo.popleft()
        vc = invc.route_vc
        out.pending[vc] -= 1
        if flit.is_head:
            out.owner[vc] = flit.packet
        if flit.is_tail:
            out.owner[vc] = None
            invc.route_port = None
            invc.route_vc = None
            if self._event:
                self._drop_request(invc, out)
                if fifo:
                    # The next packet's head is exposed, needs a route.
                    self._unrouted[invc] = None
        elif not fifo:
            # Mid-packet stall: the rest of the packet is still
            # upstream; the locked route resumes when it arrives.
            if self._event:
                self._drop_request(invc, out)
        out.staging[vc].append(flit)
        staged = self._staged_ports
        if not staged:
            self.sim._wire_engines[self.router_id] = self
        staged[out] = None
        # Return a credit upstream for the freed input-buffer slot.
        if self.in_port_kind[invc.in_port] == CHANNEL_INPUT:
            sim = self.sim
            feed = sim.pipes[self.in_port_source[invc.in_port]]
            feed.send_credit(sim, invc.vc, sim.now)
        else:
            stalled = self.sim._stalled_sources
            if stalled:
                # Injection-FIFO slot freed: wake a parked terminal
                # (tests drive the legacy phases on event simulators,
                # so the wake lives here too, not just in
                # route_switch).
                terminal = self.in_port_source[invc.in_port]
                if terminal in stalled:
                    del stalled[terminal]
                    self.sim._active_sources[terminal] = None
        if not invc.fifo:
            active = self.active
            del active[invc]
            if not active:
                # Busy -> idle transition: nothing left to route or
                # switch at this router until a new flit arrives.
                del self.sim._busy_engines[self.router_id]

    def wire_phase(self, now: int) -> None:
        """Move at most one staged flit per output port onto the wire
        (or into the ejection sink).

        A port whose staged flits cannot move this cycle — every VC
        credit-starved, or the channel still paced by ``next_free`` —
        simply stays in the staged set and is retried on later cycles;
        it leaves the set only once its staging FIFOs are empty.
        """
        staged_ports = self._staged_ports
        if not staged_ports:
            return
        sim = self.sim
        period = sim.config.channel_period
        faults = self._fault_state
        done = []
        for out in staged_ports:
            staging = out.staging
            num_vcs = out.num_vcs
            credits = out.credits
            if out.kind == CHANNEL_PORT:
                if now < out.next_free:
                    continue
                # A transiently-down channel refuses new flits; the
                # staged flit simply waits (the port stays in the
                # staged set and is retried every cycle).
                if faults is not None and faults.channel_down(
                    out.channel_index, now
                ):
                    continue
            start = out.wire_pointer
            for i in range(num_vcs):
                vc = (start + i) % num_vcs
                queue = staging[vc]
                if not queue or credits[vc] <= 0:
                    continue
                flit = queue.popleft()
                out.wire_pointer = (vc + 1) % num_vcs
                if out.kind == CHANNEL_PORT:
                    credits[vc] -= 1
                    out.next_free = now + period
                    if flit.is_head:
                        flit.packet.hops += 1
                    sim.pipes[out.channel_index].send_flit(sim, flit, vc, now)
                else:
                    sim.on_flit_ejected(flit, now)
                break
            if not any(staging):
                done.append(out)
        for out in done:
            del staged_ports[out]
        if not staged_ports:
            del sim._wire_engines[self.router_id]

    def wire_event(self, now: int) -> None:
        """Event-kernel wire phase: identical decisions to
        :meth:`wire_phase`, with the channel send inlined (the flit
        still goes through :meth:`ChannelPipe.push_flit`) and its
        delivery cycle pushed onto the event wheel directly."""
        staged_ports = self._staged_ports
        if not staged_ports:
            return
        sim = self.sim
        period = self._period
        arrival = now + self._channel_latency
        pipes = self._pipes
        wheel = self._wheel
        active_pipes = self._active_pipes
        faults = self._fault_state
        eject = sim.on_flit_ejected
        done = None
        for out in staged_ports:
            is_channel = out.kind == CHANNEL_PORT
            if is_channel:
                if now < out.next_free:
                    continue
                # Same transient-outage guard as wire_phase, so both
                # kernels hold identical flits back on identical cycles.
                if faults is not None and faults.channel_down(
                    out.channel_index, now
                ):
                    continue
            staging = out.staging
            num_vcs = out.num_vcs
            credits = out.credits
            start = out.wire_pointer
            for i in range(num_vcs):
                vc = (start + i) % num_vcs
                queue = staging[vc]
                if not queue or credits[vc] <= 0:
                    continue
                flit = queue.popleft()
                out.wire_pointer = (vc + 1) % num_vcs
                if is_channel:
                    credits[vc] -= 1
                    out.next_free = now + period
                    if flit.is_head:
                        flit.packet.hops += 1
                    pipe = pipes[out.channel_index]
                    # Inline of pipe.push_flit(flit, vc, arrival).
                    pipe.flits.append((arrival, flit, vc))
                    active_pipes[pipe] = None
                    slot = wheel.get(arrival)
                    if slot is None:
                        wheel[arrival] = [pipe]
                    elif slot[-1] is not pipe:
                        slot.append(pipe)
                else:
                    eject(flit, now)
                break
            if not any(staging):
                if done is None:
                    done = [out]
                else:
                    done.append(out)
        if done is not None:
            for out in done:
                del staged_ports[out]
            if not staged_ports:
                del sim._wire_engines[self.router_id]

    def staged_flits(self) -> int:
        """Flits currently staged at this router's output ports."""
        return sum(out.staged_flits() for out in self.out_ports)

    def quiescent(self) -> bool:
        """True when no flits are buffered or staged at this router."""
        return not self.active and not self._staged_ports

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RouterEngine {self.router_id} active={len(self.active)}>"
