"""Simulation configuration.

Defaults follow Section 3.2 of the paper: single-cycle input-queued
routers, 32 flits of buffering per port (divided evenly among the
routing algorithm's virtual channels), single-flit packets, and
Bernoulli packet injection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of the cycle-accurate simulator.

    Attributes:
        buffer_per_port: total flit buffering per input port, divided
            evenly among the virtual channels (the paper holds this
            product constant when comparing VC counts).
        packet_size: flits per packet.
        channel_latency: cycles a flit spends on an inter-router
            channel.
        credit_latency: cycles for a credit to return upstream.
        injection_queue_capacity: flit capacity of the injection-port
            buffer inside the router (the terminal-side source queue is
            unbounded, per the open-loop methodology).
        speedup: switch speedup — sub-iterations of the switch
            allocator per cycle.  ``None`` (default) means "sufficient
            speedup" as in the paper: sub-iterations repeat until no
            flit can move, so the router is never the bottleneck.
        staging_depth: per-VC output staging FIFO depth that decouples
            the sped-up switch from the one-flit-per-cycle channel.
        channel_period: cycles per flit on inter-router channels.  The
            default 1 is a full-bandwidth channel; 2 models a
            half-bandwidth channel, which is how the paper's
            equal-bisection hypercube is configured (its natural
            bisection is twice the flattened butterfly's).
        seed: base RNG seed; every stochastic component derives its own
            stream from it, so runs are reproducible.
    """

    buffer_per_port: int = 32
    packet_size: int = 1
    channel_latency: int = 1
    credit_latency: int = 1
    injection_queue_capacity: int = 4
    speedup: Optional[int] = None
    staging_depth: int = 32
    channel_period: int = 1
    seed: int = 1

    def __post_init__(self) -> None:
        if self.buffer_per_port < 1:
            raise ValueError(f"buffer_per_port must be >= 1, got {self.buffer_per_port}")
        if self.packet_size < 1:
            raise ValueError(f"packet_size must be >= 1, got {self.packet_size}")
        if self.channel_latency < 1:
            raise ValueError(f"channel_latency must be >= 1, got {self.channel_latency}")
        if self.credit_latency < 1:
            raise ValueError(f"credit_latency must be >= 1, got {self.credit_latency}")
        if self.injection_queue_capacity < 1:
            raise ValueError(
                f"injection_queue_capacity must be >= 1, "
                f"got {self.injection_queue_capacity}"
            )
        if self.speedup is not None and self.speedup < 1:
            raise ValueError(f"speedup must be >= 1 or None, got {self.speedup}")
        if self.staging_depth < 1:
            raise ValueError(f"staging_depth must be >= 1, got {self.staging_depth}")
        if self.channel_period < 1:
            raise ValueError(f"channel_period must be >= 1, got {self.channel_period}")

    def vc_depth(self, num_vcs: int) -> int:
        """Flit depth of each VC buffer given the algorithm's VC count."""
        if num_vcs < 1:
            raise ValueError(f"num_vcs must be >= 1, got {num_vcs}")
        depth = self.buffer_per_port // num_vcs
        if depth < 1:
            raise ValueError(
                f"buffer_per_port={self.buffer_per_port} cannot hold even one "
                f"flit in each of {num_vcs} VCs"
            )
        if depth < self.packet_size:
            raise ValueError(
                f"VC depth {depth} smaller than packet size {self.packet_size}; "
                f"a packet must fit in a single VC buffer"
            )
        return depth
