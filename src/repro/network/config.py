"""Simulation configuration.

Defaults follow Section 3.2 of the paper: single-cycle input-queued
routers, 32 flits of buffering per port (divided evenly among the
routing algorithm's virtual channels), single-flit packets, and
Bernoulli packet injection.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Optional


def derive_seed(base: int, *components: object) -> int:
    """Derive an independent, reproducible RNG seed from ``base``.

    The derivation hashes the base seed together with an arbitrary
    tuple of identifying components (experiment id, point index,
    replica number, ...), so every point of a sweep gets its own
    stream while remaining a pure function of its description — the
    same seed is produced no matter which process runs the point or in
    what order.

    Components must have a stable ``repr`` (ints, floats, strings,
    bools, or tuples thereof).

    >>> derive_seed(1, "fig04", 0.5) == derive_seed(1, "fig04", 0.5)
    True
    >>> derive_seed(1, "fig04", 0.5) != derive_seed(2, "fig04", 0.5)
    True
    """
    for component in _flatten((base,) + components):
        if not isinstance(component, (bool, int, float, str)):
            raise TypeError(
                f"seed components must be primitives or tuples of them, "
                f"got {type(component).__name__}"
            )
    canonical = repr((int(base),) + components).encode("utf-8")
    digest = hashlib.sha256(canonical).digest()
    return int.from_bytes(digest[:8], "big")


def _flatten(components):
    for component in components:
        if isinstance(component, (tuple, list)):
            yield from _flatten(component)
        else:
            yield component


def replica_seeds(base: int, count: int) -> tuple:
    """The canonical per-replica seed family rooted at ``base``.

    Replica 0 **is** the base seed — a single replica is byte-identical
    to a plain run with ``seed=base`` — and replica ``i > 0`` gets the
    independent stream ``derive_seed(base, "replica", i)``.  Every
    layer that fans one configuration out into replicas (the event
    kernel's ``replicate_jobs``, the batch backend's run axis) must
    draw its seeds from this function so replica ``i`` consumes the
    same stream family no matter which backend executes it.

    >>> replica_seeds(7, 2)[0]
    7
    >>> replica_seeds(7, 3) == replica_seeds(7, 3)
    True
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return (int(base),) + tuple(
        derive_seed(base, "replica", i) for i in range(1, count)
    )


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of the cycle-accurate simulator.

    Attributes:
        buffer_per_port: total flit buffering per input port, divided
            evenly among the virtual channels (the paper holds this
            product constant when comparing VC counts).
        packet_size: flits per packet.
        channel_latency: cycles a flit spends on an inter-router
            channel.
        credit_latency: cycles for a credit to return upstream.
        injection_queue_capacity: flit capacity of the injection-port
            buffer inside the router (the terminal-side source queue is
            unbounded, per the open-loop methodology).
        speedup: switch speedup — sub-iterations of the switch
            allocator per cycle.  ``None`` (default) means "sufficient
            speedup" as in the paper: sub-iterations repeat until no
            flit can move, so the router is never the bottleneck.
        staging_depth: per-VC output staging FIFO depth that decouples
            the sped-up switch from the one-flit-per-cycle channel.
        channel_period: cycles per flit on inter-router channels.  The
            default 1 is a full-bandwidth channel; 2 models a
            half-bandwidth channel, which is how the paper's
            equal-bisection hypercube is configured (its natural
            bisection is twice the flattened butterfly's).
        seed: base RNG seed; every stochastic component derives its own
            stream from it, so runs are reproducible.
        rng_streams: how the traffic / route / injection RNG streams
            are derived from ``seed``.  ``"legacy"`` (default) keeps
            the historical ``seed * 2654435761 % 2**31 + k`` scheme
            that all committed golden results were produced with, even
            though it degenerates at seed 0 (the multiplier contributes
            nothing, so stream k is just ``Random(k)``) and lets
            distinct seeds collide modulo 2**31.  ``"mixed"`` derives
            each stream via :func:`derive_seed` (SHA-256 of the seed
            plus a stream label), which has neither defect.
        faults: optional :class:`repro.faults.model.FaultModel`
            describing permanent and transient failures to inject.
            ``None`` (default) simulates a fault-free network.  Being a
            config field, the fault scenario travels through
            ``SimSpec`` pickling and into the result-cache key like any
            other knob.
        workload: optional :class:`repro.network.workload.WorkloadSpec`
            describing the traffic source for workload-driven runs
            (``Simulator.run_workload``).  ``None`` (default) leaves
            traffic to the classic pattern argument, so default-path
            cache keys are unchanged.  Like ``faults``, the spec is a
            frozen dataclass of primitives and travels through
            ``SimSpec`` pickling and the result-cache key.
    """

    buffer_per_port: int = 32
    packet_size: int = 1
    channel_latency: int = 1
    credit_latency: int = 1
    injection_queue_capacity: int = 4
    speedup: Optional[int] = None
    staging_depth: int = 32
    channel_period: int = 1
    seed: int = 1
    rng_streams: str = "legacy"
    faults: Optional[object] = None
    workload: Optional[object] = None

    def __post_init__(self) -> None:
        if self.buffer_per_port < 1:
            raise ValueError(f"buffer_per_port must be >= 1, got {self.buffer_per_port}")
        if self.packet_size < 1:
            raise ValueError(f"packet_size must be >= 1, got {self.packet_size}")
        if self.channel_latency < 1:
            raise ValueError(f"channel_latency must be >= 1, got {self.channel_latency}")
        if self.credit_latency < 1:
            raise ValueError(f"credit_latency must be >= 1, got {self.credit_latency}")
        if self.injection_queue_capacity < 1:
            raise ValueError(
                f"injection_queue_capacity must be >= 1, "
                f"got {self.injection_queue_capacity}"
            )
        if self.speedup is not None and self.speedup < 1:
            raise ValueError(f"speedup must be >= 1 or None, got {self.speedup}")
        if self.staging_depth < 1:
            raise ValueError(f"staging_depth must be >= 1, got {self.staging_depth}")
        if self.channel_period < 1:
            raise ValueError(f"channel_period must be >= 1, got {self.channel_period}")
        if self.rng_streams not in ("legacy", "mixed"):
            raise ValueError(
                f"rng_streams must be 'legacy' or 'mixed', got {self.rng_streams!r}"
            )
        if self.faults is not None:
            # Imported lazily: repro.faults derives its sampling seeds
            # from this module's derive_seed.
            from ..faults.model import FaultModel

            if not isinstance(self.faults, FaultModel):
                raise TypeError(
                    f"faults must be a repro.faults.FaultModel or None, "
                    f"got {type(self.faults).__name__}"
                )
        if self.workload is not None:
            # Lazy import: repro.network.workload imports this module.
            from .workload import WorkloadSpec

            if not isinstance(self.workload, WorkloadSpec):
                raise TypeError(
                    f"workload must be a repro.network.workload."
                    f"WorkloadSpec or None, got {type(self.workload).__name__}"
                )

    def with_seed(self, seed: int) -> "SimulationConfig":
        """Copy of this config with a different base seed."""
        return dataclasses.replace(self, seed=seed)

    def with_faults(self, faults) -> "SimulationConfig":
        """Copy of this config with a different fault model (or
        ``None`` for a fault-free network)."""
        return dataclasses.replace(self, faults=faults)

    def with_workload(self, workload) -> "SimulationConfig":
        """Copy of this config with a different workload spec (or
        ``None`` for classic pattern-driven traffic)."""
        return dataclasses.replace(self, workload=workload)

    def derived(self, *components: object) -> "SimulationConfig":
        """Copy of this config whose seed is derived from the current
        seed and ``components`` via :func:`derive_seed` — the standard
        way to give every point of a sweep its own deterministic RNG
        stream."""
        return self.with_seed(derive_seed(self.seed, *components))

    def vc_depth(self, num_vcs: int) -> int:
        """Flit depth of each VC buffer given the algorithm's VC count."""
        if num_vcs < 1:
            raise ValueError(f"num_vcs must be >= 1, got {num_vcs}")
        depth = self.buffer_per_port // num_vcs
        if depth < 1:
            raise ValueError(
                f"buffer_per_port={self.buffer_per_port} cannot hold even one "
                f"flit in each of {num_vcs} VCs"
            )
        if depth < self.packet_size:
            raise ValueError(
                f"VC depth {depth} smaller than packet size {self.packet_size}; "
                f"a packet must fit in a single VC buffer"
            )
        return depth
