"""The jit batch engine (``engine="jit"``): one fused cycle loop.

Compiles the batch kernel's entire warmup/measure/drain cycle loop —
injection advance, route-table indexing, mode/phase switching for
VAL/UGAL/UGAL-S, the wave-ranked allocator emulation, wire, and
deliver — into a single nopython call per
:data:`repro.network.batch.INJECTION_CHUNK` cycles, eliminating
per-cycle Python dispatch and temporary allocation entirely.

**Bit-identity contract.**  The engine draws no randomness: it
interprets the same pre-drawn :class:`repro.network.batch._ChunkProgram`
the numpy engine does (destinations, tie-break uniforms, Valiant
intermediates, geometric injection gaps, all drawn by the numpy
predraw pass in canonical per-run stream order).  Every ordering the
numpy engine realizes with stable vectorized sorts is reproduced here
with explicitly stable scalar equivalents:

* FIFO service order ``lexsort((u_rank, q))`` becomes two chained
  stable mergesort ``argsort`` passes.
* The wave-ranked sequential allocator (``UGAL-S``, clos-adaptive)
  becomes *group-sequential* processing in ``lexsort((u_rank, run * R
  + router))`` order with running same-cycle debits — equivalent
  because all queues one decision reads or debits emanate from its own
  router, so debits never alias across ``(run, router)`` groups and
  wave ``w``'s view (debits of waves ``< w``) equals the running view.
* The adaptive tie-break ``(float32 u * int64 ties).astype(int64)``
  is replicated as a float64 multiply truncated toward zero.

In-flight packets live in a structure-of-arrays **packet pool** (grown
geometrically between chunk calls, so slot indices stay stable) and a
linked-list calendar keyed by arrival cycle; deliveries are counted by
pseudo-events scheduled at the departure cycle (same-cycle departures
count inline), matching the numpy engine's end-of-cycle ejection
counters exactly.

numba is an optional extra (``pip install repro[jit]``); importing
this module without it works, selecting ``engine="jit"`` raises a
clean ``ImportError`` — unless ``$REPRO_BATCH_JIT_PURE`` is set, which
runs the very same step function uncompiled (pure Python, slow; it
exists so the bit-parity suite can run without numba).  When numba is
present the kernel compiles with ``cache=True`` into a writable cache
directory under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro-flatbfly/numba``), so pool workers and fabric hosts
pay compilation once per machine, not once per process;
:func:`ensure_compiled` warms it and reports the compile seconds.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

#: Environment variable: run the jit engine's step program uncompiled
#: (pure Python) when numba is absent.  Testing only — it is the same
#: code path numba compiles, just interpreted.
PURE_ENV = "REPRO_BATCH_JIT_PURE"


def _numba_cache_dir() -> str:
    """Writable numba cache dir under the repro cache root.

    Mirrors :func:`repro.runner.cache.default_cache_dir` without
    importing the runner package (the network layer must not depend on
    it)."""
    root = os.environ.get("REPRO_CACHE_DIR") or os.path.join(
        os.path.expanduser("~"), ".cache", "repro-flatbfly"
    )
    return os.path.join(root, "numba")


try:
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None
    HAVE_NUMPY = False

if "NUMBA_CACHE_DIR" not in os.environ:
    os.environ["NUMBA_CACHE_DIR"] = _numba_cache_dir()
try:
    import numba

    HAVE_NUMBA = True
except ImportError:
    numba = None
    HAVE_NUMBA = False

from .batch import (  # noqa: E402 - needs the numba gate above
    MODE_TABLE,
    MODE_UNDEC,
    MODE_VAL0,
    MODE_VAL1,
    _OCC_INF,
    _ChunkProgram,
    _RunState,
)

#: ``_Program.kind`` encoded for nopython dispatch.
_KIND_TABLE = 0
_KIND_VAL = 1
_KIND_UGAL = 2


def pure_mode() -> bool:
    """True when ``$REPRO_BATCH_JIT_PURE`` requests the uncompiled
    step program (parity testing without numba)."""
    return os.environ.get(PURE_ENV, "") not in ("", "0")


def require_jit() -> None:
    """Raise a clean ``ImportError`` when ``engine='jit'`` cannot run:
    numba absent and pure mode not requested."""
    if HAVE_NUMBA or pure_mode():
        return
    raise ImportError(
        "engine='jit' requires numba; install the jit extra "
        "(pip install repro[jit]).  To run the jit engine's step "
        "program uncompiled for testing, set REPRO_BATCH_JIT_PURE=1."
    )


# ----------------------------------------------------------------------
# The fused kernel
# ----------------------------------------------------------------------
def _step_chunk_impl(
    t0, t1, c0,
    # scalars: geometry / program
    B, C, Q, R, W,
    kind, adaptive, seq_eff, mode0, threshold,
    # scalars: window / timing
    warmup, end, drain_max, drain,
    channel_latency, channel_period, occ_grace,
    # program arrays
    ej_router, key_of_dst, cand, channel_dst, dor_chan, hops_rr,
    # chunk program (pre-drawn injections, sorted by (cycle, run, term))
    cp_run, cp_router, cp_dst, cp_imd, cp_uroute, cp_urank, offsets,
    # per-run state
    next_free, period_flat, done, saturated, cycles,
    created, delivered, frozen_created, frozen_delivered,
    labeled_created, labeled_done, win_ejects, n_events, n_routes,
    # packet pool + linked-list calendar
    pk_run, pk_router, pk_dst, pk_born, pk_hops, pk_imd, pk_mode,
    pk_kind, pk_uroute, pk_urank, pk_next, pool_meta, head, tail,
    # per-cycle scratch (capacity >= any cycle's event count)
    ev_run, ev_router, ev_dst, ev_born, ev_hops, ev_imd, ev_mode,
    ev_src, ev_uroute, ev_urank, ev_ej, ev_q, ev_chan, ev_dep,
    sort_key, debit, touched,
    # labeled-ejection record output
    rec_run, rec_born, rec_dep, rec_hops,
):
    occw = np.empty(W, dtype=np.int64)
    rec_n = 0
    t = t0
    while t < t1:
        # -- gather: calendar events (push order), then injections ----
        m = 0
        if t in head:
            s = head[t]
            del head[t]
            del tail[t]
            while s != -1:
                nxt = pk_next[s]
                if pk_kind[s] == 1:
                    # Delivery pseudo-event: the numpy engine's
                    # end-of-cycle ejection counter, per packet.
                    b = pk_run[s]
                    delivered[b] += 1
                    if pk_born[s] == 1:
                        labeled_done[b] += 1
                    pk_next[s] = pool_meta[0]
                    pool_meta[0] = s
                    pool_meta[1] += 1
                else:
                    ev_run[m] = pk_run[s]
                    ev_router[m] = pk_router[s]
                    ev_dst[m] = pk_dst[s]
                    ev_born[m] = pk_born[s]
                    ev_hops[m] = pk_hops[s]
                    ev_imd[m] = pk_imd[s]
                    ev_mode[m] = pk_mode[s]
                    ev_src[m] = s
                    h = pk_hops[s]
                    ev_uroute[m] = pk_uroute[s, h]
                    ev_urank[m] = pk_urank[s, h]
                    n_events[pk_run[s]] += 1
                    m += 1
                s = nxt
        lo = offsets[t - c0]
        hi = offsets[t - c0 + 1]
        for i in range(lo, hi):
            b = cp_run[i]
            if done[b]:
                continue
            ev_run[m] = b
            ev_router[m] = cp_router[i]
            ev_dst[m] = cp_dst[i]
            ev_born[m] = t
            ev_hops[m] = 0
            ev_imd[m] = cp_imd[i]
            ev_mode[m] = mode0
            ev_src[m] = -np.int64(i) - 1
            ev_uroute[m] = cp_uroute[i, 0]
            ev_urank[m] = cp_urank[i, 0]
            created[b] += 1
            if warmup <= t < end:
                labeled_created[b] += 1
            n_events[b] += 1
            m += 1

        if m > 0:
            # -- VAL0 -> VAL1 flip, then the ejection test -------------
            for e in range(m):
                r = ev_router[e]
                if kind != _KIND_TABLE:
                    if ev_mode[e] == MODE_VAL0 and ev_imd[e] == r:
                        ev_mode[e] = MODE_VAL1
                is_ej = ej_router[ev_dst[e]] == r
                if kind != _KIND_TABLE and ev_mode[e] == MODE_VAL0:
                    is_ej = False
                ev_ej[e] = is_ej
                if is_ej:
                    ev_q[e] = (
                        np.int64(ev_run[e]) * Q + C + np.int64(ev_dst[e])
                    )

            # -- routing ----------------------------------------------
            if not seq_eff:
                for e in range(m):
                    if ev_ej[e]:
                        continue
                    b = np.int64(ev_run[e])
                    r = np.int64(ev_router[e])
                    d = np.int64(ev_dst[e])
                    md = ev_mode[e]
                    if kind == _KIND_UGAL and md == MODE_UNDEC:
                        # UGAL source decision (no same-cycle debits).
                        dst_r = np.int64(ej_router[d])
                        im = np.int64(ev_imd[e])
                        key = key_of_dst[d]
                        q_min = _OCC_INF
                        for w in range(W):
                            ch = cand[r, key, w]
                            if ch < 0:
                                continue
                            qi = b * Q + ch
                            occ = next_free[qi] - (t - occ_grace)
                            if occ < 0:
                                occ = 0
                            if occ < q_min:
                                q_min = occ
                        h_min = hops_rr[r, dst_r]
                        degen = im == r or im == dst_r
                        safe_im = dst_r if degen else im
                        h_val = (
                            hops_rr[r, safe_im] + hops_rr[safe_im, dst_r]
                        )
                        vq = b * Q + np.int64(dor_chan[r, safe_im])
                        q_val = next_free[vq] - (t - occ_grace)
                        if q_val < 0:
                            q_val = 0
                        if degen or (
                            q_min * h_min <= q_val * h_val + threshold
                        ):
                            md = MODE_TABLE
                        else:
                            md = MODE_VAL0
                        ev_mode[e] = md
                    # channel by mode
                    if kind != _KIND_TABLE and md == MODE_VAL0:
                        chn = np.int64(dor_chan[r, np.int64(ev_imd[e])])
                    elif kind != _KIND_TABLE and md == MODE_VAL1:
                        chn = np.int64(dor_chan[r, np.int64(ej_router[d])])
                    else:
                        key = key_of_dst[d]
                        if not adaptive or W == 1:
                            chn = np.int64(cand[r, key, 0])
                        else:
                            best = _OCC_INF
                            for w in range(W):
                                ch = cand[r, key, w]
                                if ch < 0:
                                    occ = _OCC_INF
                                else:
                                    qi = b * Q + ch
                                    occ = next_free[qi] - (t - occ_grace)
                                    if occ < 0:
                                        occ = 0
                                occw[w] = occ
                                if occ < best:
                                    best = occ
                            ties = np.int64(0)
                            for w in range(W):
                                if occw[w] == best:
                                    ties += 1
                            j = np.int64(
                                np.float64(ev_uroute[e]) * np.float64(ties)
                            )
                            if j > ties - 1:
                                j = ties - 1
                            cnt = np.int64(0)
                            chn = np.int64(-1)
                            for w in range(W):
                                if occw[w] == best:
                                    if cnt == j:
                                        chn = np.int64(cand[r, key, w])
                                        break
                                    cnt += 1
                    ev_chan[e] = chn
                    ev_q[e] = b * Q + chn
                    n_routes[b] += 1
            else:
                # Group-sequential allocator emulation: process the
                # forwarded events in lexsort((u_rank, run * R +
                # router)) order with running same-cycle debits.
                mf = 0
                for e in range(m):
                    if ev_ej[e]:
                        continue
                    touched[mf] = e  # borrow as fwd index list
                    sort_key[mf] = (
                        np.int64(ev_run[e]) * R + np.int64(ev_router[e])
                    )
                    mf += 1
                if mf > 0:
                    ukey = np.empty(mf, dtype=np.float32)
                    for ii in range(mf):
                        ukey[ii] = ev_urank[touched[ii]]
                    o1 = np.argsort(ukey, kind="mergesort")
                    gkey = np.empty(mf, dtype=np.int64)
                    for ii in range(mf):
                        gkey[ii] = sort_key[o1[ii]]
                    o2 = np.argsort(gkey, kind="mergesort")
                    fwd_order = np.empty(mf, dtype=np.int64)
                    for ii in range(mf):
                        fwd_order[ii] = touched[o1[o2[ii]]]
                    n_touch = 0
                    for ii in range(mf):
                        e = fwd_order[ii]
                        b = np.int64(ev_run[e])
                        r = np.int64(ev_router[e])
                        d = np.int64(ev_dst[e])
                        md = ev_mode[e]
                        if kind == _KIND_UGAL and md == MODE_UNDEC:
                            dst_r = np.int64(ej_router[d])
                            im = np.int64(ev_imd[e])
                            key = key_of_dst[d]
                            q_min = _OCC_INF
                            for w in range(W):
                                ch = cand[r, key, w]
                                if ch < 0:
                                    continue
                                qi = b * Q + ch
                                occ = next_free[qi] - (t - occ_grace)
                                if occ < 0:
                                    occ = 0
                                occ += debit[qi]
                                if occ < q_min:
                                    q_min = occ
                            h_min = hops_rr[r, dst_r]
                            degen = im == r or im == dst_r
                            safe_im = dst_r if degen else im
                            h_val = (
                                hops_rr[r, safe_im]
                                + hops_rr[safe_im, dst_r]
                            )
                            vq = b * Q + np.int64(dor_chan[r, safe_im])
                            q_val = next_free[vq] - (t - occ_grace)
                            if q_val < 0:
                                q_val = 0
                            q_val += debit[vq]
                            if degen or (
                                q_min * h_min <= q_val * h_val + threshold
                            ):
                                md = MODE_TABLE
                            else:
                                md = MODE_VAL0
                            ev_mode[e] = md
                        if kind != _KIND_TABLE and md == MODE_VAL0:
                            chn = np.int64(
                                dor_chan[r, np.int64(ev_imd[e])]
                            )
                        elif kind != _KIND_TABLE and md == MODE_VAL1:
                            chn = np.int64(
                                dor_chan[r, np.int64(ej_router[d])]
                            )
                        else:
                            key = key_of_dst[d]
                            if not adaptive or W == 1:
                                chn = np.int64(cand[r, key, 0])
                            else:
                                best = _OCC_INF
                                for w in range(W):
                                    ch = cand[r, key, w]
                                    if ch < 0:
                                        occ = _OCC_INF
                                    else:
                                        qi = b * Q + ch
                                        occ = (
                                            next_free[qi] - (t - occ_grace)
                                        )
                                        if occ < 0:
                                            occ = 0
                                        occ += debit[qi]
                                    occw[w] = occ
                                    if occ < best:
                                        best = occ
                                ties = np.int64(0)
                                for w in range(W):
                                    if occw[w] == best:
                                        ties += 1
                                j = np.int64(
                                    np.float64(ev_uroute[e])
                                    * np.float64(ties)
                                )
                                if j > ties - 1:
                                    j = ties - 1
                                cnt = np.int64(0)
                                chn = np.int64(-1)
                                for w in range(W):
                                    if occw[w] == best:
                                        if cnt == j:
                                            chn = np.int64(cand[r, key, w])
                                            break
                                        cnt += 1
                        ev_chan[e] = chn
                        qi = b * Q + chn
                        ev_q[e] = qi
                        n_routes[b] += 1
                        if debit[qi] == 0:
                            touched[n_touch] = qi
                            n_touch += 1
                        debit[qi] += channel_period
                    for k in range(n_touch):
                        debit[touched[k]] = 0

            # -- FIFO service: lexsort((u_rank, q)) as two stable
            #    mergesort passes, then per-queue virtual service -----
            o1 = np.argsort(ev_urank[:m], kind="mergesort")
            for ii in range(m):
                sort_key[ii] = ev_q[o1[ii]]
            o2 = np.argsort(sort_key[:m], kind="mergesort")
            prev_q = np.int64(-1)
            base = np.int64(0)
            cnt = np.int64(0)
            for ii in range(m):
                idx = o1[o2[ii]]
                qq = ev_q[idx]
                if qq != prev_q:
                    if prev_q >= 0:
                        next_free[prev_q] = (
                            base + cnt * period_flat[prev_q]
                        )
                    nf = next_free[qq]
                    base = t if t > nf else nf
                    cnt = 0
                    prev_q = qq
                ev_dep[idx] = base + cnt * period_flat[qq]
                cnt += 1
            if prev_q >= 0:
                next_free[prev_q] = base + cnt * period_flat[prev_q]

            # -- record ejections / push forwards, in event order -----
            for e in range(m):
                b = ev_run[e]
                dep = ev_dep[e]
                s = ev_src[e]
                if ev_ej[e]:
                    if warmup <= dep < end:
                        win_ejects[b] += 1
                    labeled = warmup <= ev_born[e] < end
                    if labeled:
                        rec_run[rec_n] = b
                        rec_born[rec_n] = ev_born[e]
                        rec_dep[rec_n] = dep
                        rec_hops[rec_n] = ev_hops[e]
                        rec_n += 1
                    if dep == t:
                        delivered[b] += 1
                        if labeled:
                            labeled_done[b] += 1
                        if s >= 0:
                            pk_next[s] = pool_meta[0]
                            pool_meta[0] = s
                            pool_meta[1] += 1
                    else:
                        if s < 0:
                            s = pool_meta[0]
                            pool_meta[0] = pk_next[s]
                            pool_meta[1] -= 1
                        pk_kind[s] = 1
                        pk_run[s] = b
                        pk_born[s] = 1 if labeled else 0
                        pk_next[s] = -1
                        if dep in head:
                            pk_next[tail[dep]] = s
                        else:
                            head[dep] = s
                        tail[dep] = s
                else:
                    arrival = dep + channel_latency
                    if s < 0:
                        i = -s - 1
                        s = pool_meta[0]
                        pool_meta[0] = pk_next[s]
                        pool_meta[1] -= 1
                        for u in range(pk_uroute.shape[1]):
                            pk_uroute[s, u] = cp_uroute[i, u]
                            pk_urank[s, u] = cp_urank[i, u]
                    pk_kind[s] = 0
                    pk_run[s] = b
                    pk_router[s] = channel_dst[ev_chan[e]]
                    pk_dst[s] = ev_dst[e]
                    pk_born[s] = ev_born[e]
                    pk_hops[s] = ev_hops[e] + 1
                    pk_imd[s] = ev_imd[e]
                    pk_mode[s] = ev_mode[e]
                    pk_next[s] = -1
                    if arrival in head:
                        pk_next[tail[arrival]] = s
                    else:
                        head[arrival] = s
                    tail[arrival] = s

        # -- end-of-cycle window / drain bookkeeping ------------------
        now = t + 1
        all_done = True
        for b in range(B):
            if done[b]:
                continue
            if drain:
                newly = (
                    now >= end and labeled_done[b] >= labeled_created[b]
                )
                if not newly and now >= drain_max:
                    saturated[b] = True
                    newly = True
            else:
                newly = now >= end
            if newly:
                cycles[b] = now
                frozen_created[b] = created[b]
                frozen_delivered[b] = delivered[b]
                done[b] = True
            else:
                all_done = False
        t += 1
        if all_done:
            break
    return t, rec_n


if HAVE_NUMBA:
    _step_chunk = numba.njit(cache=True, nogil=True)(_step_chunk_impl)
else:
    _step_chunk = _step_chunk_impl

_COMPILED = False


def _make_calendar():
    """A fresh empty calendar map: numba typed Dict when compiled,
    plain dict in pure mode (same operations, same semantics)."""
    if HAVE_NUMBA:
        from numba import types
        from numba.typed import Dict as TypedDict

        return TypedDict.empty(types.int64, types.int64)
    return {}


def ensure_compiled() -> float:
    """Compile (or cache-load) the fused kernel and return the seconds
    it took; 0.0 when already compiled in-process or in pure mode.

    Calls the kernel on a zero-cycle window over dummy state, so only
    compilation happens.  With ``cache=True`` and the shared
    ``NUMBA_CACHE_DIR``, warm processes (fabric/pool workers) load the
    machine-code cache instead of recompiling."""
    global _COMPILED
    if not HAVE_NUMBA or _COMPILED:
        return 0.0
    started = time.perf_counter()
    i8 = np.int64
    z8 = np.zeros(1, dtype=np.int64)
    z4 = np.zeros(1, dtype=np.int32)
    z2 = np.zeros(1, dtype=np.int16)
    z1 = np.zeros(1, dtype=np.int8)
    zb = np.zeros(1, dtype=np.bool_)
    zf = np.zeros((1, 1), dtype=np.float32)
    zf1 = np.zeros(1, dtype=np.float32)
    z44 = np.zeros((1, 1), dtype=np.int32)
    z88 = np.zeros((1, 1), dtype=np.int64)
    z444 = np.zeros((1, 1, 1), dtype=np.int32)
    _step_chunk(
        i8(0), i8(0), i8(0),
        i8(1), i8(1), i8(2), i8(1), i8(1),
        i8(0), False, False, i8(0), i8(0),
        i8(0), i8(0), i8(1), True,
        i8(1), i8(1), i8(1),
        z4, z4, z444, z4, z44, z88,
        z4, z4, z4, z4, zf, zf, z8,
        z8, z8, zb, zb, z8,
        z8, z8, z8, z8,
        z8, z8, z8, z8, z8,
        z4, z4, z4, z8, z2, z4, z1,
        z1, zf, zf, np.full(1, -1, dtype=np.int64), z8.copy(),
        _make_calendar(), _make_calendar(),
        z4, z4, z4, z8, z2, z4, z1,
        z8, zf1, zf1, zb, z8, z8, z8,
        z8, z8, z8,
        z4, z8, z8, z2,
    )
    _COMPILED = True
    return time.perf_counter() - started


class JitStepper:
    """Driver-facing stepper for the jit engine: owns the packet pool,
    linked-list calendar, and scratch buffers, and hands each chunk to
    the fused kernel.  Interchangeable with
    :class:`repro.network.batch._NumpyStepper`."""

    def __init__(self, backend, state: _RunState) -> None:
        require_jit()
        self.backend = backend
        self.state = state
        prog = backend.program
        cfg = backend.config
        self._kind = {"table": _KIND_TABLE, "val": _KIND_VAL,
                      "ugal": _KIND_UGAL}[prog.kind]
        W = prog.cand.shape[2]
        if prog.kind == "table":
            self._seq_eff = bool(
                prog.sequential and prog.adaptive and W > 1
            )
        else:
            self._seq_eff = bool(prog.sequential)
        self._W = W
        self._cand = np.ascontiguousarray(prog.cand, dtype=np.int32)
        self._ej_router = np.ascontiguousarray(
            prog.ej_router, dtype=np.int32
        )
        self._key_of_dst = np.ascontiguousarray(
            prog.key_of_dst, dtype=np.int32
        )
        self._channel_dst = np.ascontiguousarray(
            prog.channel_dst, dtype=np.int32
        )
        if prog.dor_chan is not None:
            self._dor_chan = np.ascontiguousarray(
                prog.dor_chan, dtype=np.int32
            )
            self._hops_rr = np.ascontiguousarray(
                prog.hops_rr, dtype=np.int64
            )
        else:
            self._dor_chan = np.zeros((1, 1), dtype=np.int32)
            self._hops_rr = np.zeros((1, 1), dtype=np.int64)
        self._channel_latency = int(cfg.channel_latency)
        self._channel_period = int(cfg.channel_period)

        self._head = _make_calendar()
        self._tail = _make_calendar()
        self._debit = np.zeros(state.B * state.Q, dtype=np.int64)
        self._capacity = 0
        self._grows = 0
        self._alloc_pool(1024)
        self.chunk: Optional[_ChunkProgram] = None

    # ------------------------------------------------------------------
    def _alloc_pool(self, capacity: int) -> None:
        """Grow the packet pool (and capacity-sized scratch) to
        ``capacity`` slots; existing slot indices stay valid, so the
        calendar's linked lists survive the growth untouched."""
        old = self._capacity
        ucols = self.state.ucols

        def grow1(name, dtype):
            buf = np.empty(capacity, dtype=dtype)
            if old:
                buf[:old] = getattr(self, name)
            setattr(self, name, buf)

        grow1("_pk_run", np.int32)
        grow1("_pk_router", np.int32)
        grow1("_pk_dst", np.int32)
        grow1("_pk_born", np.int64)
        grow1("_pk_hops", np.int16)
        grow1("_pk_imd", np.int32)
        grow1("_pk_mode", np.int8)
        grow1("_pk_kind", np.int8)
        grow1("_pk_next", np.int64)
        u = np.empty((capacity, ucols), dtype=np.float32)
        k = np.empty((capacity, ucols), dtype=np.float32)
        if old:
            u[:old] = self._pk_uroute
            k[:old] = self._pk_urank
        self._pk_uroute = u
        self._pk_urank = k
        # Chain the new slots onto the free list.
        self._pk_next[old:capacity] = np.arange(
            old + 1, capacity + 1, dtype=np.int64
        )
        if old == 0:
            self._pool_meta = np.array([0, capacity], dtype=np.int64)
            self._pk_next[capacity - 1] = -1
        else:
            self._pk_next[capacity - 1] = self._pool_meta[0]
            self._pool_meta[0] = old
            self._pool_meta[1] += capacity - old
            self._grows += 1
        # Per-cycle scratch and record buffers, capacity-sized.
        for name, dtype in (
            ("_ev_run", np.int32), ("_ev_router", np.int32),
            ("_ev_dst", np.int32), ("_ev_born", np.int64),
            ("_ev_hops", np.int16), ("_ev_imd", np.int32),
            ("_ev_mode", np.int8), ("_ev_src", np.int64),
            ("_ev_uroute", np.float32), ("_ev_urank", np.float32),
            ("_ev_ej", np.bool_), ("_ev_q", np.int64),
            ("_ev_chan", np.int64), ("_ev_dep", np.int64),
            ("_sort_key", np.int64), ("_touched", np.int64),
            ("_rec_run", np.int32), ("_rec_born", np.int64),
            ("_rec_dep", np.int64), ("_rec_hops", np.int16),
        ):
            setattr(self, name, np.empty(capacity, dtype=dtype))
        self._capacity = capacity

    # ------------------------------------------------------------------
    def prepare(self) -> float:
        return ensure_compiled()

    def counters(self) -> Dict[str, object]:
        return {
            "pool_capacity": self._capacity,
            "pool_grows": self._grows,
        }

    def load_chunk(self, chunk: _ChunkProgram) -> None:
        self.chunk = chunk
        used = self._capacity - int(self._pool_meta[1])
        need = used + chunk.run.size
        if need > self._capacity:
            self._alloc_pool(max(2 * self._capacity, need))

    # ------------------------------------------------------------------
    def step_until(self, t: int, t1: int) -> int:
        state = self.state
        cp = self.chunk
        prog = self.backend.program
        t_out, rec_n = _step_chunk(
            np.int64(t), np.int64(t1), np.int64(cp.c0),
            np.int64(state.B), np.int64(state.C), np.int64(state.Q),
            np.int64(prog.R), np.int64(self._W),
            np.int64(self._kind), bool(prog.adaptive),
            bool(self._seq_eff), np.int64(prog.mode0),
            np.int64(prog.threshold),
            np.int64(state.warmup), np.int64(state.end),
            np.int64(state.drain_max), bool(state.drain),
            np.int64(self._channel_latency),
            np.int64(self._channel_period), np.int64(state.occ_grace),
            self._ej_router, self._key_of_dst, self._cand,
            self._channel_dst, self._dor_chan, self._hops_rr,
            cp.run, cp.router, cp.dst, cp.imd, cp.u_route, cp.u_rank,
            cp.offsets,
            state.next_free, state.period_flat, state.done,
            state.saturated, state.cycles,
            state.created, state.delivered, state.frozen_created,
            state.frozen_delivered, state.labeled_created,
            state.labeled_done, state.win_ejects, state.n_events,
            state.n_routes,
            self._pk_run, self._pk_router, self._pk_dst, self._pk_born,
            self._pk_hops, self._pk_imd, self._pk_mode, self._pk_kind,
            self._pk_uroute, self._pk_urank, self._pk_next,
            self._pool_meta, self._head, self._tail,
            self._ev_run, self._ev_router, self._ev_dst, self._ev_born,
            self._ev_hops, self._ev_imd, self._ev_mode, self._ev_src,
            self._ev_uroute, self._ev_urank, self._ev_ej, self._ev_q,
            self._ev_chan, self._ev_dep,
            self._sort_key, self._debit, self._touched,
            self._rec_run, self._rec_born, self._rec_dep,
            self._rec_hops,
        )
        if rec_n:
            state.rec_run.append(self._rec_run[:rec_n].copy())
            state.rec_created.append(self._rec_born[:rec_n].copy())
            state.rec_dep.append(self._rec_dep[:rec_n].copy())
            state.rec_hops.append(self._rec_hops[:rec_n].copy())
        return int(t_out)
