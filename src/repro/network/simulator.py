"""The cycle-accurate network simulator.

Ties together topology, routing algorithm, traffic pattern, and
injection process, and advances the network one cycle at a time:

1. deliver flits and credits that complete their channel traversal,
2. create new packets (injection process + traffic pattern) and move
   source-queue flits into injection buffers (one flit per cycle per
   terminal, matching unit terminal bandwidth),
3. routing phase at every router (greedy or sequential allocator),
4. switch phase at every router (one flit per output channel per
   cycle).

Runs are fully deterministic given ``SimulationConfig.seed``.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..core.routing.base import RoutingAlgorithm
from ..topologies.base import Topology
from ..traffic.patterns import TrafficPattern
from .allocators import make_allocator
from .channel import ChannelPipe
from .config import SimulationConfig
from .injection import BatchInjection, BernoulliInjection, InjectionProcess
from .packet import Flit, Packet
from .router import RouterEngine
from .stats import BatchResult, LatencySummary, MeasurementWindow, OpenLoopResult


class Simulator:
    """A single simulation instance.

    Build one per (topology, routing algorithm, traffic pattern,
    config) combination; run methods may be invoked once per instance
    (construct a fresh simulator for each measurement point).
    """

    def __init__(
        self,
        topology: Topology,
        algorithm: RoutingAlgorithm,
        pattern: TrafficPattern,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        self.topology = topology
        self.algorithm = algorithm
        self.pattern = pattern
        self.config = config or SimulationConfig()
        self.allocator = make_allocator(algorithm.sequential)

        seed = self.config.seed
        self.traffic_rng = random.Random(seed * 2654435761 % (2**31) + 1)
        self.route_rng = random.Random(seed * 2654435761 % (2**31) + 2)
        self.injection_rng = random.Random(seed * 2654435761 % (2**31) + 3)

        self.pattern.bind(topology)
        self.algorithm.attach(self)

        self.now = 0
        self.packets_created = 0
        self.packets_delivered = 0
        self.flits_ejected = 0
        self.in_flight = 0

        self._build()
        self._window: Optional[MeasurementWindow] = None
        self._tracers: List = []
        self._consumed = False

    def _consume(self) -> None:
        """Mark this instance as used by a run method.

        Each simulator carries warm state (buffers, RNG positions,
        statistics) from its run; measuring twice on one instance
        would silently mix them, so run methods are single-use.
        """
        if self._consumed:
            raise RuntimeError(
                "this Simulator has already executed a run; build a fresh "
                "Simulator for each measurement"
            )
        self._consumed = True

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        topo = self.topology
        cfg = self.config
        num_vcs = self.algorithm.num_vcs
        vc_depth = cfg.vc_depth(num_vcs)

        self.engines: List[RouterEngine] = [
            RouterEngine(self, r) for r in range(topo.num_routers)
        ]
        # Output side first so channel pipes know their source port.
        src_port: Dict[int, int] = {}
        for r, engine in enumerate(self.engines):
            for channel in topo.out_channels(r):
                src_port[channel.index] = engine.add_channel_output(
                    channel.index, num_vcs, vc_depth, cfg.staging_depth
                )
            for terminal in topo.ejecting_terminals(r):
                engine.add_ejection_output(terminal, num_vcs, cfg.staging_depth)
        # Input side.
        dst_in_port: Dict[int, int] = {}
        self._injection_port: Dict[int, Tuple[int, int]] = {}
        for r, engine in enumerate(self.engines):
            for channel in topo.in_channels(r):
                dst_in_port[channel.index] = engine.add_channel_input(
                    channel.index, num_vcs, vc_depth
                )
            for terminal in topo.injecting_terminals(r):
                port = engine.add_injection_input(
                    terminal, cfg.injection_queue_capacity
                )
                self._injection_port[terminal] = (r, port)

        self.pipes: List[ChannelPipe] = [
            ChannelPipe(
                channel.index,
                channel.src,
                channel.dst,
                src_port[channel.index],
                dst_in_port[channel.index],
            )
            for channel in topo.channels
        ]
        self._active_pipes: Dict[ChannelPipe, None] = {}
        # Source queues: (packet, next_flit_index) per terminal.
        self._sources: List[Deque[Packet]] = [
            deque() for _ in range(topo.num_terminals)
        ]
        self._source_cursor: List[int] = [0] * topo.num_terminals
        self._active_sources: Dict[int, None] = {}

    # ------------------------------------------------------------------
    # Hooks used by RouterEngine
    # ------------------------------------------------------------------
    def activate_pipe(self, pipe: ChannelPipe) -> None:
        self._active_pipes[pipe] = None

    def attach_tracer(self, tracer) -> None:
        """Register a :class:`repro.network.trace.Tracer` to observe
        every subsequent cycle."""
        tracer.attach(self)
        self._tracers.append(tracer)

    def on_flit_ejected(self, flit: Flit, now: int) -> None:
        self.flits_ejected += 1
        if self._window is not None:
            self._window.record_ejected_flit(now)
        if flit.is_tail:
            packet = flit.packet
            packet.time_ejected = now
            self.packets_delivered += 1
            self.in_flight -= 1
            if self._window is not None:
                self._window.record_delivery(packet)

    # ------------------------------------------------------------------
    # Cycle execution
    # ------------------------------------------------------------------
    def _deliver(self, now: int) -> None:
        done = []
        for pipe in self._active_pipes:
            flits = pipe.flits
            engine = self.engines[pipe.dst_router]
            while flits and flits[0][0] <= now:
                _, flit, vc = flits.popleft()
                engine.deliver(pipe.dst_in_port, vc, flit)
            credits = pipe.credits
            if credits:
                out = self.engines[pipe.src_router].out_ports[pipe.src_port]
                while credits and credits[0][0] <= now:
                    _, vc = credits.popleft()
                    out.credits[vc] += 1
            if not flits and not credits:
                done.append(pipe)
        for pipe in done:
            del self._active_pipes[pipe]

    def _create_packet(self, terminal: int, now: int) -> Packet:
        dst = self.pattern.destination(terminal, self.traffic_rng)
        packet = Packet(
            pid=self.packets_created,
            src=terminal,
            dst=dst,
            dst_router=self.topology.ejection_router(dst),
            size=self.config.packet_size,
            time_created=now,
        )
        self.packets_created += 1
        self.in_flight += 1
        if self._window is not None:
            self._window.label_if_in_window(packet, now)
        self.algorithm.on_packet_created(packet)
        return packet

    def _inject(self, process: InjectionProcess, now: int) -> None:
        for terminal, count in process.injections(now):
            queue = self._sources[terminal]
            for _ in range(count):
                queue.append(self._create_packet(terminal, now))
            self._active_sources[terminal] = None
        if not self._active_sources:
            return
        done = []
        for terminal in self._active_sources:
            queue = self._sources[terminal]
            router, port = self._injection_port[terminal]
            engine = self.engines[router]
            invc = engine.in_ports[port][0]
            if invc.has_space():
                packet = queue[0]
                cursor = self._source_cursor[terminal]
                flit = Flit(
                    packet, is_head=(cursor == 0), is_tail=(cursor == packet.size - 1)
                )
                if flit.is_head:
                    packet.time_injected = now
                engine.deliver(port, 0, flit)
                if flit.is_tail:
                    queue.popleft()
                    self._source_cursor[terminal] = 0
                    if not queue:
                        done.append(terminal)
                else:
                    self._source_cursor[terminal] = cursor + 1
        for terminal in done:
            del self._active_sources[terminal]

    def step(self, process: InjectionProcess) -> None:
        """Advance the network by one cycle."""
        now = self.now
        engines = self.engines
        self._deliver(now)
        self._inject(process, now)
        # Switch speedup: repeat routing + switch sub-iterations until
        # nothing moves (or the configured speedup bound is reached).
        speedup = self.config.speedup
        iteration = 0
        while True:
            for engine in engines:
                engine.routing_phase(now)
            moved = False
            for engine in engines:
                if engine.switch_subiter(now):
                    moved = True
            iteration += 1
            if not moved or (speedup is not None and iteration >= speedup):
                break
        for engine in engines:
            engine.wire_phase(now)
        for tracer in self._tracers:
            tracer.on_cycle(now)
        self.now = now + 1

    # ------------------------------------------------------------------
    # Invariants (used by the test suite)
    # ------------------------------------------------------------------
    def flits_accounted(self) -> int:
        """Flits currently buffered in routers or in flight on channels
        (excludes source queues)."""
        buffered = sum(
            len(invc.fifo)
            for engine in self.engines
            for port in engine.in_ports
            for invc in port
        )
        staged = sum(engine.staged_flits() for engine in self.engines)
        flying = sum(len(pipe.flits) for pipe in self.pipes)
        return buffered + staged + flying

    def quiescent(self) -> bool:
        """No flits anywhere: sources, buffers, or channels.  Credits
        still returning upstream do not count — they carry no data."""
        return (
            self.in_flight == 0
            and not self._active_sources
            and not any(pipe.flits for pipe in self.pipes)
        )

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------
    def run_open_loop(
        self,
        load: float,
        warmup: int = 1000,
        measure: int = 1000,
        drain_max: int = 100_000,
    ) -> OpenLoopResult:
        """Warm up, label a measurement interval, and drain.

        Args:
            load: offered load in flits per terminal per cycle.
            warmup: warm-up cycles before labeling starts.
            measure: length of the labeling window in cycles.
            drain_max: hard cycle cap; if labeled packets remain beyond
                it the run is reported as saturated.
        """
        self._consume()
        process = BernoulliInjection(load)
        process.start(
            self.topology.num_terminals, self.config.packet_size, self.injection_rng
        )
        window = MeasurementWindow(warmup, warmup + measure)
        self._window = window
        saturated = False
        while True:
            self.step(process)
            if self.now >= warmup + measure and window.drained():
                break
            if self.now >= drain_max:
                saturated = not window.drained()
                break
        return OpenLoopResult(
            offered_load=load,
            accepted_throughput=window.throughput(self.topology.num_terminals),
            latency=LatencySummary.from_samples(window.latencies),
            network_latency=LatencySummary.from_samples(window.network_latencies),
            saturated=saturated,
            cycles=self.now,
            packets_labeled=window.labeled_total,
            packets_delivered=self.packets_delivered,
            mean_hops=(
                sum(window.hops) / len(window.hops) if window.hops else float("nan")
            ),
        )

    def run_batch(self, batch_size: int, max_cycles: int = 1_000_000) -> BatchResult:
        """Deliver a batch of ``batch_size`` packets per terminal and
        report the completion time (Figure 5)."""
        self._consume()
        process = BatchInjection(batch_size)
        process.start(
            self.topology.num_terminals, self.config.packet_size, self.injection_rng
        )
        while True:
            self.step(process)
            if process.exhausted() and self.in_flight == 0:
                break
            if self.now >= max_cycles:
                raise RuntimeError(
                    f"batch of {batch_size} not drained within {max_cycles} cycles"
                )
        return BatchResult(
            batch_size=batch_size,
            completion_cycles=self.now,
            packets=self.packets_created,
        )

    def measure_saturation_throughput(
        self, warmup: int = 1000, measure: int = 1000
    ) -> float:
        """Accepted throughput at an offered load of 1.0 — the
        throughput plateau of the latency-load curves."""
        self._consume()
        process = BernoulliInjection(1.0)
        process.start(
            self.topology.num_terminals, self.config.packet_size, self.injection_rng
        )
        window = MeasurementWindow(warmup, warmup + measure)
        self._window = window
        for _ in range(warmup + measure):
            self.step(process)
        return window.throughput(self.topology.num_terminals)
