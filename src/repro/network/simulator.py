"""The cycle-accurate network simulator.

Ties together topology, routing algorithm, traffic pattern, and
injection process, and advances the network one cycle at a time:

1. deliver flits and credits that complete their channel traversal,
2. create new packets (injection process + traffic pattern) and move
   source-queue flits into injection buffers (one flit per cycle per
   terminal, matching unit terminal bandwidth),
3. routing phase at every active router (greedy or sequential
   allocator),
4. switch phase at every active router (one flit per output channel
   per cycle).

Two kernels implement this contract:

* The **event kernel** (default) keeps per-cycle work proportional to
  the flits in flight: routers register themselves in activation sets
  when they hold work (``_busy_engines`` for routing/switch,
  ``_wire_engines`` for staged output flits), channel pipes schedule
  their own delivery cycles on an event wheel instead of being
  scanned, and fully quiescent stretches at low load are skipped by
  jumping straight to the next scheduled injection.
* The **polling kernel** is the original all-routers-every-cycle loop,
  kept behind ``REPRO_KERNEL=polling`` for one release as a
  cross-check; ``tests/test_kernel_equivalence.py`` asserts the two
  kernels produce bit-identical results.

Both kernels execute the same router-engine code in the same global
order (routers in ascending index within each switch sub-iteration),
so every shared-RNG draw, every round-robin pointer, and therefore
every golden result is identical between them.  Runs are fully
deterministic given ``SimulationConfig.seed``.
"""

from __future__ import annotations

import os
import random
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..core.routing.base import RoutingAlgorithm
from ..profiling import PhaseProfile, profiling_enabled
from ..topologies.base import Topology
from ..traffic.patterns import TrafficPattern
from .allocators import make_allocator
from .buffers import CHANNEL_PORT
from .channel import ChannelPipe
from .config import SimulationConfig, derive_seed
from .injection import BatchInjection, BernoulliInjection, InjectionProcess
from .packet import Flit, Packet
from .router import RouterEngine
from .stats import (
    BatchResult,
    KernelStats,
    LatencySummary,
    MeasurementWindow,
    OpenLoopResult,
)
from .workload import UnsupportedWorkloadError, Workload

#: Environment variable selecting the simulation kernel.
KERNEL_ENV = "REPRO_KERNEL"

#: Recognized kernel names.  ``"batch"`` selects the vectorized
#: structure-of-arrays backend (:mod:`repro.network.batch`), which is
#: validated statistically rather than bit-exactly against the other
#: two and requires numpy (``pip install repro[batch]``).
KERNELS = ("event", "polling", "batch")


def resolve_kernel(kernel: Optional[str] = None) -> str:
    """Kernel name: explicit argument, else ``$REPRO_KERNEL``, else
    the event kernel."""
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV) or "event"
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; pick one of {', '.join(KERNELS)}"
        )
    return kernel


class _NullInjection(InjectionProcess):
    """An injection process that never fires.

    Workload runs create their packets in ``_enqueue_messages`` before
    each step; the kernels' inject phase still runs to advance source
    queues into the injection buffers, driven by this process so its
    creation half is a no-op.
    """

    def start(self, num_terminals: int, packet_size: int, rng) -> None:
        pass

    def injections(self, now: int):
        return []

    def exhausted(self) -> bool:
        return True

    def next_injection_cycle(self, now: int) -> Optional[int]:
        return None


_NULL_PROCESS = _NullInjection()


class Simulator:
    """A single simulation instance.

    Build one per (topology, routing algorithm, traffic source,
    config) combination; run methods may be invoked once per instance
    (construct a fresh simulator for each measurement point).

    The traffic source is either a classic
    :class:`~repro.traffic.patterns.TrafficPattern` (driven by the
    open-loop run methods) or a
    :class:`~repro.network.workload.Workload` — passed in the same
    positional slot, or described by ``config.workload`` (in which
    case pass ``None``) — driven by :meth:`run_workload`.

    Args:
        kernel: ``"event"`` or ``"polling"``; ``None`` (default) reads
            ``$REPRO_KERNEL`` and falls back to the event kernel.
        profile: enable per-phase wall timers (see
            :mod:`repro.profiling`); ``None`` (default) reads
            ``$REPRO_PROFILE_PHASES``.
    """

    def __init__(
        self,
        topology: Topology,
        algorithm: RoutingAlgorithm,
        pattern: Optional[TrafficPattern],
        config: Optional[SimulationConfig] = None,
        kernel: Optional[str] = None,
        profile: Optional[bool] = None,
    ) -> None:
        self.topology = topology
        self.algorithm = algorithm
        self.config = config or SimulationConfig()
        # Resolve the traffic source: a Workload may ride the pattern
        # argument, or a WorkloadSpec may come in through the config.
        workload = None
        if isinstance(pattern, Workload):
            workload = pattern
            pattern = None
        spec = self.config.workload
        if spec is not None:
            if workload is not None or pattern is not None:
                raise ValueError(
                    "pass the traffic source either as the pattern/workload "
                    "argument or via config.workload, not both"
                )
            workload = spec.build()
        if pattern is None and workload is None:
            raise ValueError(
                "a traffic source is required: pass a TrafficPattern or a "
                "Workload (or set config.workload)"
            )
        self.pattern = pattern
        self.workload = workload
        self._num_vc_classes = 1 if workload is None else workload.num_classes
        if self._num_vc_classes < 1:
            raise ValueError(
                f"workload {workload.name!r} declares num_classes="
                f"{self._num_vc_classes}; must be >= 1"
            )
        # Delivery hook resolved at run time (run_workload): non-None
        # only when the workload overrides Workload.on_delivered.
        self._on_delivered = None
        self.allocator = make_allocator(algorithm.sequential)
        self.kernel = resolve_kernel(kernel)
        self._event_driven = self.kernel == "event"
        self._profile = PhaseProfile() if profiling_enabled(profile) else None

        seed = self.config.seed
        if self.config.rng_streams == "legacy":
            self.traffic_rng = random.Random(seed * 2654435761 % (2**31) + 1)
            self.route_rng = random.Random(seed * 2654435761 % (2**31) + 2)
            self.injection_rng = random.Random(seed * 2654435761 % (2**31) + 3)
        else:
            self.traffic_rng = random.Random(derive_seed(seed, "traffic"))
            self.route_rng = random.Random(derive_seed(seed, "route"))
            self.injection_rng = random.Random(derive_seed(seed, "injection"))

        if self.pattern is not None:
            self.pattern.bind(topology)

        # Fault injection: sample the configured fault model against
        # the topology before the algorithm attaches (fault-aware
        # algorithms read ``fault_state`` during attach).  A trivial
        # model is treated exactly like no model, so fault-aware
        # wrappers degrade to their fault-free behavior bit-for-bit.
        self.fault_set = None
        self.fault_state = None
        faults = self.config.faults
        if faults is not None and not faults.trivial:
            if not algorithm.fault_aware:
                raise TypeError(
                    f"{algorithm.name} is not fault-aware; running it under a "
                    f"non-trivial FaultModel would route packets into failed "
                    f"channels (wrap it with a repro.faults algorithm)"
                )
            from ..faults.model import FaultState

            self.fault_set = faults.sample(topology)
            self.fault_state = FaultState(self.fault_set, topology)

        self.now = 0
        self.packets_created = 0
        self.packets_delivered = 0
        self.packets_undeliverable = 0
        self.flits_ejected = 0
        self.in_flight = 0

        # Activation sets (router id -> engine), maintained by the
        # engines themselves on every idle<->busy transition.
        self._busy_engines: Dict[int, RouterEngine] = {}
        self._wire_engines: Dict[int, RouterEngine] = {}
        # Event wheel: cycle -> pipes with a delivery due that cycle.
        # Channel/credit latencies are fixed, so arrivals cluster on a
        # handful of future cycles; a calendar dict beats a heap.
        self._wheel: Dict[int, List[ChannelPipe]] = {}

        # Kernel metrics (materialized into KernelStats by run methods).
        self.kernel_stats: Optional[KernelStats] = None
        self._phase_calls = 0
        self._events_dispatched = 0
        self._idle_skipped = 0
        self._route_calls = 0

        # Flit free list: flits are unreachable once ejected, so they
        # are recycled instead of re-allocated (identical simulation —
        # a flit's identity never influences a decision).  Disabled via
        # $REPRO_FLIT_POOL=0, which the pooled-vs-unpooled equivalence
        # test uses to prove bit-identical results.
        self._flit_pool: List[Flit] = []
        self._flit_pool_enabled = os.environ.get("REPRO_FLIT_POOL", "1") != "0"
        self._flits_allocated = 0
        self._flits_reused = 0

        self.algorithm.attach(self)
        self._build()
        self._window: Optional[MeasurementWindow] = None
        self._tracers: List = []
        self._consumed = False

    def _consume(self) -> None:
        """Mark this instance as used by a run method.

        Each simulator carries warm state (buffers, RNG positions,
        statistics) from its run; measuring twice on one instance
        would silently mix them, so run methods are single-use.
        """
        if self._consumed:
            raise RuntimeError(
                "this Simulator has already executed a run; build a fresh "
                "Simulator for each measurement"
            )
        self._consumed = True

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        topo = self.topology
        cfg = self.config
        # Message-class VC partitioning: each class gets its own full
        # copy of the algorithm's VC set on every channel, so request
        # and reply traffic can never block each other's buffers
        # (protocol deadlock freedom).  Single-class sources (all
        # legacy traffic) multiply by 1 and build identical networks.
        num_vcs = self.algorithm.num_vcs * self._num_vc_classes
        vc_depth = cfg.vc_depth(num_vcs)

        self.engines: List[RouterEngine] = [
            RouterEngine(self, r) for r in range(topo.num_routers)
        ]
        # Output side first so channel pipes know their source port.
        src_port: Dict[int, int] = {}
        for r, engine in enumerate(self.engines):
            for channel in topo.out_channels(r):
                src_port[channel.index] = engine.add_channel_output(
                    channel.index, num_vcs, vc_depth, cfg.staging_depth
                )
            for terminal in topo.ejecting_terminals(r):
                engine.add_ejection_output(terminal, num_vcs, cfg.staging_depth)
        # Input side.
        dst_in_port: Dict[int, int] = {}
        self._injection_port: Dict[int, Tuple[int, int]] = {}
        for r, engine in enumerate(self.engines):
            for channel in topo.in_channels(r):
                dst_in_port[channel.index] = engine.add_channel_input(
                    channel.index, num_vcs, vc_depth
                )
            for terminal in topo.injecting_terminals(r):
                port = engine.add_injection_input(
                    terminal, cfg.injection_queue_capacity
                )
                self._injection_port[terminal] = (r, port)

        self.pipes: List[ChannelPipe] = [
            ChannelPipe(
                channel.index,
                channel.src,
                channel.dst,
                src_port[channel.index],
                dst_in_port[channel.index],
            )
            for channel in topo.channels
        ]
        self._active_pipes: Dict[ChannelPipe, None] = {}
        for engine in self.engines:
            engine.finalize()
        # Bind the shared per-topology route table (if the algorithm
        # opted in during attach): records the channel->port map on the
        # first simulator for a topology and verifies it on every later
        # one, so table ports always mean what this engine set thinks
        # they mean.
        table = getattr(self.algorithm, "_route_table", None)
        if table is not None:
            table.bind(self)
        # Source queues: (packet, next_flit_index) per terminal.
        self._sources: List[Deque[Packet]] = [
            deque() for _ in range(topo.num_terminals)
        ]
        self._source_cursor: List[int] = [0] * topo.num_terminals
        self._active_sources: Dict[int, None] = {}
        # Event-kernel parking lot: active terminals whose injection
        # FIFO was full at the last attempt.  Woken by the switch move
        # that frees a FIFO slot instead of re-polled every cycle.
        self._stalled_sources: Dict[int, None] = {}
        # The on_packet_created hook, or None when the algorithm does
        # not override the base no-op (skips a call per packet).
        self._on_created = (
            self.algorithm.on_packet_created
            if type(self.algorithm).on_packet_created
            is not RoutingAlgorithm.on_packet_created
            else None
        )
        # Injection fast path: terminal -> (engine, injection InputVC),
        # resolved once so the per-cycle injection loop does no port
        # lookups.
        self._injection_engine: List[Optional[RouterEngine]] = [
            None
        ] * topo.num_terminals
        self._injection_invc: List = [None] * topo.num_terminals
        for terminal, (r, port) in self._injection_port.items():
            self._injection_engine[terminal] = self.engines[r]
            self._injection_invc[terminal] = self.engines[r].in_ports[port][0]

    # ------------------------------------------------------------------
    # Hooks used by RouterEngine / ChannelPipe
    # ------------------------------------------------------------------
    def schedule_pipe(self, pipe: ChannelPipe, arrival: int) -> None:
        """Register that ``pipe`` has something due at ``arrival``."""
        self._active_pipes[pipe] = None
        if self._event_driven:
            wheel = self._wheel
            slot = wheel.get(arrival)
            if slot is None:
                wheel[arrival] = [pipe]
            elif slot[-1] is not pipe:
                # Duplicate wheel entries are harmless (delivery drains
                # a pipe completely), so dedup only the common
                # flit+credit burst onto the same pipe.
                slot.append(pipe)

    def attach_tracer(self, tracer) -> None:
        """Register a :class:`repro.network.trace.Tracer` to observe
        every subsequent cycle."""
        tracer.attach(self)
        self._tracers.append(tracer)

    def on_flit_ejected(self, flit: Flit, now: int) -> None:
        self.flits_ejected += 1
        window = self._window
        if window is not None and window.start <= now < window.end:
            window.ejected_flits += 1
            if window.class_ejected is not None:
                window.class_ejected[flit.packet.msg_class] += 1
        if flit.is_tail:
            packet = flit.packet
            packet.time_ejected = now
            self.packets_delivered += 1
            self.in_flight -= 1
            if window is not None and packet.labeled:
                window.labeled_outstanding -= 1
                window.latencies.append(now - packet.time_created)
                window.network_latencies.append(now - packet.time_injected)
                window.hops.append(packet.hops)
                if window.class_latencies is not None:
                    window.class_latencies[packet.msg_class].append(
                        now - packet.time_created
                    )
                    window.class_network_latencies[packet.msg_class].append(
                        now - packet.time_injected
                    )
            hook = self._on_delivered
            if hook is not None:
                hook(packet, now)
        # The flit is dead: nothing downstream of ejection holds a
        # reference, so recycle it.  The stale ``packet`` reference is
        # left in place (overwritten on reuse) so observers wrapping
        # this method can still inspect the ejected flit.
        if self._flit_pool_enabled and len(self._flit_pool) < 65536:
            self._flit_pool.append(flit)

    # ------------------------------------------------------------------
    # Cycle execution
    # ------------------------------------------------------------------
    def _deliver(self, now: int) -> None:
        """Polling-kernel delivery: scan every busy pipe."""
        done = []
        engines = self.engines
        for pipe in self._active_pipes:
            self._events_dispatched += 1
            flits = pipe.flits
            engine = engines[pipe.dst_router]
            while flits and flits[0][0] <= now:
                _, flit, vc = flits.popleft()
                engine.deliver(pipe.dst_in_port, vc, flit)
            credits = pipe.credits
            if credits:
                out = engines[pipe.src_router].out_ports[pipe.src_port]
                while credits and credits[0][0] <= now:
                    _, vc = credits.popleft()
                    out.credits[vc] += 1
                    out.occ -= 1
            if not flits and not credits:
                done.append(pipe)
        for pipe in done:
            del self._active_pipes[pipe]

    def _deliver_events(self, now: int) -> None:
        """Event-kernel delivery: visit exactly the pipes with
        something due at ``now``."""
        batch = self._wheel.pop(now, None)
        if batch is None:
            return
        engines = self.engines
        active = self._active_pipes
        busy_engines = self._busy_engines
        self._events_dispatched += len(batch)
        for pipe in batch:
            flits = pipe.flits
            if flits:
                engine = engines[pipe.dst_router]
                # Inline of engine.deliver(port, vc, flit) for the
                # event kernel (the ``self._event`` branch is always
                # taken here), saving a method call per arriving flit.
                in_vcs = engine.in_ports[pipe.dst_in_port]
                while flits and flits[0][0] <= now:
                    _, flit, vc = flits.popleft()
                    invc = in_vcs[vc]
                    fifo = invc.fifo
                    if len(fifo) >= invc.depth:
                        raise AssertionError(
                            f"buffer overflow at router {engine.router_id} "
                            f"port {pipe.dst_in_port} vc {vc}: "
                            f"credit protocol violated"
                        )
                    if fifo:
                        fifo.append(flit)
                        continue
                    fifo.append(flit)
                    port = invc.route_port
                    if port is None:
                        engine._unrouted[invc] = None
                    else:
                        requests = engine._requests
                        out = engine.out_ports[port]
                        members = requests.get(out)
                        if members is None:
                            requests[out] = {invc: None}
                        else:
                            members[invc] = None
                    eng_active = engine.active
                    if not eng_active:
                        busy_engines[engine.router_id] = engine
                    eng_active[invc] = None
            credits = pipe.credits
            if credits:
                out = engines[pipe.src_router].out_ports[pipe.src_port]
                out_credits = out.credits
                arrived = 0
                while credits and credits[0][0] <= now:
                    out_credits[credits.popleft()[1]] += 1
                    arrived += 1
                out.occ -= arrived
            if not flits and not credits and pipe in active:
                del active[pipe]

    def _flush_events_through(self, target: int) -> None:
        """Drain every wheel slot up to and including ``target`` (used
        when idle-skipping jumps over several cycles at once)."""
        wheel = self._wheel
        for cycle in sorted(c for c in wheel if c <= target):
            self._deliver_events(cycle)

    def _create_packet(self, terminal: int, now: int) -> Optional[Packet]:
        dst = self.pattern.destination(terminal, self.traffic_rng)
        # The traffic-RNG draw above happens unconditionally so a
        # fault set never perturbs the destination sequence; only then
        # is the pair checked for deliverability under the permanent
        # faults.  Undeliverable packets are counted and dropped before
        # entering the source queue — they are never labeled and never
        # in flight, which is what lets the drain phase terminate on a
        # disconnected network.
        if self.fault_state is not None and not self.algorithm.deliverable(
            terminal, dst
        ):
            self.packets_undeliverable += 1
            return None
        packet = Packet(
            pid=self.packets_created,
            src=terminal,
            dst=dst,
            dst_router=self.topology.ejection_router(dst),
            size=self.config.packet_size,
            time_created=now,
        )
        self.packets_created += 1
        self.in_flight += 1
        if self._window is not None:
            self._window.label_if_in_window(packet, now)
        self.algorithm.on_packet_created(packet)
        return packet

    def _inject(self, process: InjectionProcess, now: int) -> None:
        for terminal, count in process.injections(now):
            queue = self._sources[terminal]
            for _ in range(count):
                packet = self._create_packet(terminal, now)
                if packet is not None:
                    queue.append(packet)
            if queue:
                self._active_sources[terminal] = None
        if not self._active_sources:
            return
        done = []
        for terminal in self._active_sources:
            queue = self._sources[terminal]
            router, port = self._injection_port[terminal]
            engine = self.engines[router]
            invc = engine.in_ports[port][0]
            if invc.has_space():
                packet = queue[0]
                cursor = self._source_cursor[terminal]
                flit = self._make_flit(
                    packet, cursor == 0, cursor == packet.size - 1
                )
                if flit.is_head:
                    packet.time_injected = now
                engine.deliver(port, 0, flit)
                if flit.is_tail:
                    queue.popleft()
                    self._source_cursor[terminal] = 0
                    if not queue:
                        done.append(terminal)
                else:
                    self._source_cursor[terminal] = cursor + 1
        for terminal in done:
            del self._active_sources[terminal]

    def _make_flit(self, packet: Packet, is_head: bool, is_tail: bool) -> Flit:
        """A flit off the free list (or a fresh one when it is empty)."""
        pool = self._flit_pool
        if pool:
            flit = pool.pop()
            flit.packet = packet
            flit.is_head = is_head
            flit.is_tail = is_tail
            self._flits_reused += 1
            return flit
        self._flits_allocated += 1
        return Flit(packet, is_head, is_tail)

    def _inject_event(self, process: InjectionProcess, now: int) -> None:
        """Event-kernel injection: same decisions as :meth:`_inject`
        (identical packet creation order, so identical traffic-RNG
        draws), with packet creation inlined (:meth:`_create_packet`
        body, loop-hoisted), the port lookups pre-resolved per
        terminal, and the flit delivery inlined
        (``RouterEngine.deliver`` for an injection input, minus the
        overflow assertion — the has-space check here is that
        assertion).

        Terminals whose injection FIFO was full at the last attempt
        wait in ``_stalled_sources`` instead of being re-polled every
        cycle; the switch move that frees a FIFO slot moves them back
        (see the injection-input branch of ``route_switch``).  The
        per-terminal injection work is independent — no RNG, no shared
        state beyond the order-insensitive activation sets — so the
        changed iteration order over terminals is result-identical to
        :meth:`_inject`'s single scan.
        """
        active_sources = self._active_sources
        sources = self._sources
        injections = process.injections(now)
        if injections:
            destination = self.pattern.destination
            traffic_rng = self.traffic_rng
            algorithm = self.algorithm
            on_created = self._on_created
            check_faults = self.fault_state is not None
            ejection_router = self.topology.ejection_router
            size = self.config.packet_size
            window = self._window
            labeling = window is not None and window.start <= now < window.end
            stalled = self._stalled_sources
            pid = self.packets_created
            pid0 = pid
            for terminal, count in injections:
                queue = sources[terminal]
                was_empty = not queue
                for _ in range(count):
                    dst = destination(terminal, traffic_rng)
                    if check_faults and not algorithm.deliverable(
                        terminal, dst
                    ):
                        self.packets_undeliverable += 1
                        continue
                    packet = Packet(
                        pid, terminal, dst, ejection_router(dst), size, now
                    )
                    pid += 1
                    if labeling:
                        packet.labeled = True
                        window.labeled_outstanding += 1
                        window.labeled_total += 1
                    if on_created is not None:
                        on_created(packet)
                    queue.append(packet)
                if was_empty and queue:
                    active_sources[terminal] = None
            if pid != pid0:
                self.packets_created = pid
                self.in_flight += pid - pid0
        if not active_sources:
            return
        invcs = self._injection_invc
        engines = self._injection_engine
        cursors = self._source_cursor
        pool = self._flit_pool
        busy_engines = self._busy_engines
        stalled = self._stalled_sources
        done = None
        for terminal in active_sources:
            invc = invcs[terminal]
            fifo = invc.fifo
            if len(fifo) < invc.depth:
                queue = sources[terminal]
                packet = queue[0]
                cursor = cursors[terminal]
                if cursor == 0:
                    is_head = True
                    is_tail = packet.size == 1
                    packet.time_injected = now
                else:
                    is_head = False
                    is_tail = cursor == packet.size - 1
                if pool:
                    flit = pool.pop()
                    flit.packet = packet
                    flit.is_head = is_head
                    flit.is_tail = is_tail
                    self._flits_reused += 1
                else:
                    flit = Flit(packet, is_head, is_tail)
                    self._flits_allocated += 1
                if not fifo:
                    # Empty -> non-empty: the engine's activation
                    # bookkeeping, inlined.  An injection VC may carry a
                    # locked route (multi-flit packet whose source queue
                    # ran dry mid-packet), hence the request refiling.
                    engine = engines[terminal]
                    if invc.route_port is None:
                        engine._unrouted[invc] = None
                    else:
                        requests = engine._requests
                        out = engine.out_ports[invc.route_port]
                        members = requests.get(out)
                        if members is None:
                            requests[out] = {invc: None}
                        else:
                            members[invc] = None
                    active = engine.active
                    if not active:
                        busy_engines[engine.router_id] = engine
                    active[invc] = None
                fifo.append(flit)
                if is_tail:
                    queue.popleft()
                    cursors[terminal] = 0
                    if not queue:
                        if done is None:
                            done = [terminal]
                        else:
                            done.append(terminal)
                else:
                    cursors[terminal] = cursor + 1
            else:
                # FIFO full: park the terminal until a switch move
                # frees a slot (no point re-polling every cycle).
                stalled[terminal] = None
                if done is None:
                    done = [terminal]
                else:
                    done.append(terminal)
        if done is not None:
            for terminal in done:
                del active_sources[terminal]

    def _enqueue_messages(self, workload: Workload, now: int) -> None:
        """Create the packets for ``workload``'s cycle-``now`` messages
        and append them to their source queues.

        The workload-run analogue of the creation half of
        :meth:`_inject` / :meth:`_inject_event`, shared by both exact
        kernels: identical packet numbering, labeling, fault handling
        and source-activation transitions, with the destination chosen
        by the workload instead of a pattern (``SyntheticWorkload``
        reproduces the legacy pattern draws bit-for-bit).
        """
        msgs = workload.messages(now)
        if not msgs:
            return
        sources = self._sources
        active_sources = self._active_sources
        window = self._window
        algorithm = self.algorithm
        check_faults = self.fault_state is not None
        ejection_router = self.topology.ejection_router
        default_size = self.config.packet_size
        on_created = self._on_created
        labeling = window is not None and window.start <= now < window.end
        pid = self.packets_created
        pid0 = pid
        for msg in msgs:
            src = msg.src
            if check_faults and not algorithm.deliverable(src, msg.dst):
                self.packets_undeliverable += 1
                continue
            size = msg.size
            packet = Packet(
                pid,
                src,
                msg.dst,
                ejection_router(msg.dst),
                default_size if size is None else size,
                now,
                msg.msg_class,
            )
            pid += 1
            if labeling:
                packet.labeled = True
                window.labeled_outstanding += 1
                window.labeled_total += 1
            if on_created is not None:
                on_created(packet)
            queue = sources[src]
            if not queue:
                # Empty -> non-empty: activate the terminal.  A stalled
                # terminal always has a non-empty queue, so this can
                # never double-book a terminal as active and stalled.
                active_sources[src] = None
            queue.append(packet)
        if pid != pid0:
            self.packets_created = pid
            self.in_flight += pid - pid0

    def step(self, process: InjectionProcess) -> None:
        """Advance the network by one cycle."""
        self._select_step()(process)

    def _select_step(self):
        """The per-cycle step function for this kernel/profile combo.
        Run loops hoist this out of their cycle loop."""
        if self._event_driven:
            if self._profile is not None:
                return self._step_event_profiled
            return self._step_event
        if self._profile is not None:
            return self._step_polling_profiled
        return self._step_polling

    def _step_polling(self, process: InjectionProcess) -> None:
        """The original kernel: every engine is walked through every
        phase every cycle, whether or not it has work."""
        now = self.now
        engines = self.engines
        num_engines = len(engines)
        self._deliver(now)
        self._inject(process, now)
        # Switch speedup: repeat routing + switch sub-iterations until
        # nothing moves (or the configured speedup bound is reached).
        speedup = self.config.speedup
        iteration = 0
        while True:
            for engine in engines:
                engine.routing_phase(now)
            moved = False
            for engine in engines:
                if engine.switch_subiter(now):
                    moved = True
            self._phase_calls += 2 * num_engines
            iteration += 1
            if not moved or (speedup is not None and iteration >= speedup):
                break
        for engine in engines:
            engine.wire_phase(now)
        self._phase_calls += num_engines
        for tracer in self._tracers:
            tracer.on_cycle(now)
        self.now = now + 1

    def _step_event(self, process: InjectionProcess) -> None:
        """The active-set kernel: only routers that can possibly do
        something are visited, in the same global order (ascending
        router id per sub-iteration) as the polling kernel, so every
        shared-RNG draw and arbitration decision is identical.

        Routing and switching are fused per engine
        (:meth:`RouterEngine.route_switch`); within one cycle an engine
        that fails to move any flit in a sub-iteration cannot move one
        in a later sub-iteration (its state only changes through its
        own switch progress — engines are independent until the wire
        phase), so each sweep narrows to the engines that moved in the
        previous one.
        """
        now = self.now
        self._deliver_events(now)
        self._inject_event(process, now)
        busy = self._busy_engines
        if busy:
            if len(busy) == 1:
                movers: List[RouterEngine] = list(busy.values())
            else:
                movers = [busy[r] for r in sorted(busy)]
            speedup = self.config.speedup
            phase_calls = 0
            iteration = 0
            while True:
                # Only engines reporting possible follow-up work (2)
                # are swept again; the polling kernel would route and
                # switch nothing at any engine reporting 0 or 1.
                next_movers = [e for e in movers if e.route_switch(now) == 2]
                phase_calls += len(movers)
                iteration += 1
                if not next_movers or (
                    speedup is not None and iteration >= speedup
                ):
                    break
                movers = next_movers
            self._phase_calls += phase_calls
        wire = self._wire_engines
        if wire:
            if len(wire) == 1:
                targets = list(wire.values())
            else:
                targets = [wire[r] for r in sorted(wire)]
            for engine in targets:
                engine.wire_event(now)
            self._phase_calls += len(targets)
        for tracer in self._tracers:
            tracer.on_cycle(now)
        self.now = now + 1

    def _step_event_profiled(self, process: InjectionProcess) -> None:
        """Timed twin of :meth:`_step_event`: identical work in
        identical order, with a ``perf_counter`` fence around each
        phase.  Any change to :meth:`_step_event` must be mirrored here
        (``tests/test_profiling.py`` asserts the two produce
        bit-identical results)."""
        seconds = self._profile.seconds
        perf = time.perf_counter
        now = self.now
        t0 = perf()
        self._deliver_events(now)
        t1 = perf()
        self._inject_event(process, now)
        t2 = perf()
        busy = self._busy_engines
        if busy:
            if len(busy) == 1:
                movers: List[RouterEngine] = list(busy.values())
            else:
                movers = [busy[r] for r in sorted(busy)]
            speedup = self.config.speedup
            phase_calls = 0
            iteration = 0
            while True:
                next_movers = [e for e in movers if e.route_switch(now) == 2]
                phase_calls += len(movers)
                iteration += 1
                if not next_movers or (
                    speedup is not None and iteration >= speedup
                ):
                    break
                movers = next_movers
            self._phase_calls += phase_calls
        t3 = perf()
        wire = self._wire_engines
        if wire:
            if len(wire) == 1:
                targets = list(wire.values())
            else:
                targets = [wire[r] for r in sorted(wire)]
            for engine in targets:
                engine.wire_event(now)
            self._phase_calls += len(targets)
        t4 = perf()
        seconds["deliver"] += t1 - t0
        seconds["inject"] += t2 - t1
        seconds["route_switch"] += t3 - t2
        seconds["wire"] += t4 - t3
        for tracer in self._tracers:
            tracer.on_cycle(now)
        self.now = now + 1

    def _step_polling_profiled(self, process: InjectionProcess) -> None:
        """Timed twin of :meth:`_step_polling` (same mirroring contract
        as :meth:`_step_event_profiled`)."""
        seconds = self._profile.seconds
        perf = time.perf_counter
        now = self.now
        engines = self.engines
        num_engines = len(engines)
        t0 = perf()
        self._deliver(now)
        t1 = perf()
        self._inject(process, now)
        t2 = perf()
        speedup = self.config.speedup
        iteration = 0
        while True:
            for engine in engines:
                engine.routing_phase(now)
            moved = False
            for engine in engines:
                if engine.switch_subiter(now):
                    moved = True
            self._phase_calls += 2 * num_engines
            iteration += 1
            if not moved or (speedup is not None and iteration >= speedup):
                break
        t3 = perf()
        for engine in engines:
            engine.wire_phase(now)
        self._phase_calls += num_engines
        t4 = perf()
        seconds["deliver"] += t1 - t0
        seconds["inject"] += t2 - t1
        seconds["route_switch"] += t3 - t2
        seconds["wire"] += t4 - t3
        for tracer in self._tracers:
            tracer.on_cycle(now)
        self.now = now + 1

    # ------------------------------------------------------------------
    # Idle skipping (event kernel only)
    # ------------------------------------------------------------------
    def _skip_ok(self) -> bool:
        """Whether quiescent stretches may be jumped over: event
        kernel, and every attached tracer can summarize idle gaps."""
        return self._event_driven and all(
            tracer.supports_idle_skip for tracer in self._tracers
        )

    def _skip_idle_to(self, target: int) -> None:
        """Jump ``now`` over the quiescent cycles ``[now, target)``.

        Only valid when no flit exists anywhere (network and source
        queues empty) and no injection is scheduled before ``target``:
        then the skipped cycles are no-ops apart from credits still
        returning upstream, which are flushed here — by ``target`` they
        have arrived in both kernels, and nothing could have observed
        them earlier because nothing was routed or switched.
        """
        start = self.now
        for tracer in self._tracers:
            tracer.on_idle_gap(start, target)
        self._idle_skipped += target - start
        self.now = target
        self._flush_events_through(target)

    def _finish_stats(self, started: float) -> KernelStats:
        stats = KernelStats(
            kernel=self.kernel,
            cycles=self.now,
            idle_cycles_skipped=self._idle_skipped,
            router_phase_calls=self._phase_calls,
            events_dispatched=self._events_dispatched,
            wall_seconds=time.perf_counter() - started,
            route_calls=self._route_calls,
            flits_allocated=self._flits_allocated,
            flits_reused=self._flits_reused,
            phase_seconds=(
                None if self._profile is None else self._profile.as_dict()
            ),
        )
        self.kernel_stats = stats
        return stats

    # ------------------------------------------------------------------
    # Invariants (used by the test suite)
    # ------------------------------------------------------------------
    def flits_accounted(self) -> int:
        """Flits currently buffered in routers or in flight on channels
        (excludes source queues).

        Deliberately scans *every* engine and pipe rather than trusting
        the activation sets, so tests can use it to catch flits the
        active-set kernel lost track of.
        """
        buffered = sum(
            len(invc.fifo)
            for engine in self.engines
            for port in engine.in_ports
            for invc in port
        )
        staged = sum(engine.staged_flits() for engine in self.engines)
        flying = sum(len(pipe.flits) for pipe in self.pipes)
        return buffered + staged + flying

    def quiescent(self) -> bool:
        """No flits anywhere: sources, buffers, or channels.  Credits
        still returning upstream do not count — they carry no data."""
        return (
            self.in_flight == 0
            and not self._active_sources
            and not self._stalled_sources
            and not self._busy_engines
            and not self._wire_engines
            and not any(pipe.flits for pipe in self._active_pipes)
        )

    def check_activation_invariants(self) -> None:
        """Assert the activation sets agree with the ground truth.

        ``_busy_engines`` must be exactly the engines with buffered
        flits, ``_wire_engines`` exactly those with staged flits, and
        every in-flight pipe item must be reachable (active pipe, and
        a scheduled wheel entry under the event kernel)."""
        busy_truth = {
            e.router_id for e in self.engines
            if any(invc.fifo for port in e.in_ports for invc in port)
        }
        if busy_truth != set(self._busy_engines):
            raise AssertionError(
                f"busy set {sorted(self._busy_engines)} != engines with "
                f"buffered flits {sorted(busy_truth)}"
            )
        wire_truth = {e.router_id for e in self.engines if e.staged_flits()}
        if wire_truth != set(self._wire_engines):
            raise AssertionError(
                f"wire set {sorted(self._wire_engines)} != engines with "
                f"staged flits {sorted(wire_truth)}"
            )
        for engine in self.engines:
            for out in engine.out_ports:
                if out.kind == CHANNEL_PORT and out.occ != out.occupancy():
                    raise AssertionError(
                        f"router {engine.router_id} port {out.index}: occ "
                        f"counter {out.occ} != computed occupancy "
                        f"{out.occupancy()}"
                    )
        for terminal in self._stalled_sources:
            invc = self._injection_invc[terminal]
            if not self._sources[terminal]:
                raise AssertionError(
                    f"terminal {terminal} stalled with an empty source queue"
                )
            if terminal in self._active_sources:
                raise AssertionError(
                    f"terminal {terminal} both active and stalled"
                )
            if invc is not None and len(invc.fifo) < invc.depth:
                raise AssertionError(
                    f"terminal {terminal} stalled with injection-FIFO space"
                )
        busy_pipes = {pipe for pipe in self.pipes if pipe.busy()}
        if not busy_pipes.issubset(self._active_pipes):
            raise AssertionError("pipe with in-flight items not in active set")
        if self._event_driven:
            scheduled = {pipe for slot in self._wheel.values() for pipe in slot}
            if not busy_pipes.issubset(scheduled):
                raise AssertionError("pipe with in-flight items has no event")
            for engine in self.engines:
                unrouted_truth = {
                    invc for invc in engine.active if invc.route_port is None
                }
                if unrouted_truth != set(engine._unrouted):
                    raise AssertionError(
                        f"router {engine.router_id}: unrouted set out of sync"
                    )
                request_truth = {
                    invc for invc in engine.active if invc.route_port is not None
                }
                filed = {
                    invc
                    for members in engine._requests.values()
                    for invc in members
                }
                if request_truth != filed:
                    raise AssertionError(
                        f"router {engine.router_id}: standing requests out of sync"
                    )

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------
    def run_open_loop(
        self,
        load: float,
        warmup: int = 1000,
        measure: int = 1000,
        drain_max: int = 100_000,
    ) -> OpenLoopResult:
        """Warm up, label a measurement interval, and drain.

        Args:
            load: offered load in flits per terminal per cycle.
            warmup: warm-up cycles before labeling starts.
            measure: length of the labeling window in cycles.
            drain_max: hard cycle cap; if labeled packets remain beyond
                it the run is reported as saturated.  Must exceed
                ``warmup + measure`` or labeling could never complete.
        """
        self._require_pattern("run_open_loop")
        end = warmup + measure
        if drain_max <= end:
            raise ValueError(
                f"drain_max={drain_max} must exceed warmup+measure={end}: the "
                f"run would be cut off before the measurement window ends and "
                f"its labeled packets could never all be observed draining"
            )
        if self.kernel == "batch":
            batched = self.run_open_loop_batch(
                load, seeds=(self.config.seed,), warmup=warmup,
                measure=measure, drain_max=drain_max,
            )
            return batched.results[0]
        self._consume()
        started = time.perf_counter()
        process = BernoulliInjection(load)
        process.start(
            self.topology.num_terminals, self.config.packet_size, self.injection_rng
        )
        window = MeasurementWindow(warmup, end)
        self._window = window
        saturated = False
        skip_ok = self._skip_ok()
        step = self._select_step()
        while True:
            step(process)
            if self.now >= end and window.drained():
                break
            if self.now >= drain_max:
                saturated = not window.drained()
                break
            if skip_ok and self.in_flight == 0 and not self._active_sources:
                nxt = process.next_injection_cycle(self.now)
                bound = end if self.now < end else drain_max
                target = bound if nxt is None else min(nxt, bound)
                if target > self.now:
                    self._skip_idle_to(target)
                    if self.now >= end and window.drained():
                        break
                    if self.now >= drain_max:
                        saturated = not window.drained()
                        break
        stats = self._finish_stats(started)
        return OpenLoopResult(
            offered_load=load,
            accepted_throughput=window.throughput(self.topology.num_terminals),
            latency=LatencySummary.from_samples(window.latencies),
            network_latency=LatencySummary.from_samples(window.network_latencies),
            saturated=saturated,
            cycles=self.now,
            packets_labeled=window.labeled_total,
            packets_delivered=self.packets_delivered,
            mean_hops=(
                sum(window.hops) / len(window.hops) if window.hops else float("nan")
            ),
            packets_undeliverable=self.packets_undeliverable,
            kernel=stats,
        )

    def _require_pattern(self, method: str) -> None:
        if self.pattern is None:
            raise ValueError(
                f"{method}() drives a TrafficPattern, but this simulator "
                f"was built with the workload {self.workload.name!r}; use "
                f"run_workload() instead"
            )

    def run_workload(
        self,
        warmup: int = 1000,
        measure: int = 1000,
        drain_max: int = 100_000,
    ) -> OpenLoopResult:
        """Drive this simulator's :class:`~repro.network.workload.Workload`
        through the measurement methodology of :meth:`run_open_loop`:
        warm up, label the packets created during the measurement
        window, and drain.

        Two behaviors extend the open-loop contract:

        * **Closed loops.**  If the workload overrides ``on_delivered``
          it receives a callback for every delivered packet and may
          schedule dependent messages (request→reply).  Idle-skipping
          stays exact because a quiescent network implies no
          outstanding delivery, so ``next_message_cycle`` bounds all
          future messages.
        * **Finite workloads** (trace replay, bounded request counts)
          may end the run before the window closes: the run stops as
          soon as the workload is exhausted and the network drained.

        For workloads with ``num_classes > 1`` the result carries
        per-message-class latency/throughput in ``per_class``.

        Under ``kernel="batch"`` only workloads reducible to the
        open-loop Bernoulli×pattern form run (via their
        ``batch_delegate``); closed-loop and trace sources raise
        :class:`~repro.network.workload.UnsupportedWorkloadError`.
        """
        wl = self.workload
        if wl is None:
            raise ValueError(
                "this simulator was built with a TrafficPattern; "
                "run_workload() needs a Workload (pass one in place of the "
                "pattern, or set config.workload)"
            )
        end = warmup + measure
        if drain_max <= end:
            raise ValueError(
                f"drain_max={drain_max} must exceed warmup+measure={end}: the "
                f"run would be cut off before the measurement window ends and "
                f"its labeled packets could never all be observed draining"
            )
        if self.kernel == "batch":
            delegate = wl.batch_delegate()
            if delegate is None:
                raise UnsupportedWorkloadError(
                    f"kernel='batch' cannot run the workload {wl.name!r}: "
                    f"the vectorized backend implements only open-loop "
                    f"Bernoulli traffic over a compiled pattern "
                    f"(closed-loop and trace-driven sources need the exact "
                    f"kernels' delivery hooks and per-cycle timing); use "
                    f"kernel='event' or kernel='polling'"
                )
            load, pattern = delegate
            self._consume()
            from .batch import BatchBackend

            backend = BatchBackend(
                self.topology, self.algorithm, pattern, self.config
            )
            return backend.run_open_loop(
                load, (self.config.seed,), warmup=warmup, measure=measure,
                drain_max=drain_max,
            ).results[0]
        self._consume()
        started = time.perf_counter()
        wl.start(
            self.topology,
            self.config.packet_size,
            self.traffic_rng,
            self.injection_rng,
        )
        # Resolve the delivery hook only for workloads that override
        # the base no-op, so open-loop workloads pay nothing per tail.
        if type(wl).on_delivered is not Workload.on_delivered:
            self._on_delivered = wl.on_delivered
        window = MeasurementWindow(warmup, end, num_classes=wl.num_classes)
        self._window = window
        saturated = False
        skip_ok = self._skip_ok()
        step = self._select_step()
        process = _NULL_PROCESS
        while True:
            self._enqueue_messages(wl, self.now)
            step(process)
            if self.now >= end and window.drained():
                break
            if self.in_flight == 0 and wl.exhausted():
                # Finite workload fully delivered before the window
                # closed (every labeled packet is out: drained()).
                break
            if self.now >= drain_max:
                saturated = not window.drained()
                break
            if skip_ok and self.in_flight == 0 and not self._active_sources:
                # Quiescent network: with nothing in flight there is no
                # pending delivery, so no on_delivered callback can
                # schedule anything the workload's own calendars don't
                # already know about — next_message_cycle bounds every
                # future message even for closed loops.
                nxt = wl.next_message_cycle(self.now)
                bound = end if self.now < end else drain_max
                target = bound if nxt is None else min(nxt, bound)
                if target > self.now:
                    self._skip_idle_to(target)
                    if self.now >= end and window.drained():
                        break
                    if self.now >= drain_max:
                        saturated = not window.drained()
                        break
        stats = self._finish_stats(started)
        num_terminals = self.topology.num_terminals
        return OpenLoopResult(
            offered_load=wl.offered_load,
            accepted_throughput=window.throughput(num_terminals),
            latency=LatencySummary.from_samples(window.latencies),
            network_latency=LatencySummary.from_samples(window.network_latencies),
            saturated=saturated,
            cycles=self.now,
            packets_labeled=window.labeled_total,
            packets_delivered=self.packets_delivered,
            mean_hops=(
                sum(window.hops) / len(window.hops) if window.hops else float("nan")
            ),
            packets_undeliverable=self.packets_undeliverable,
            kernel=stats,
            per_class=window.per_class_stats(num_terminals),
        )

    def run_batch(self, batch_size: int, max_cycles: int = 1_000_000) -> BatchResult:
        """Deliver a batch of ``batch_size`` packets per terminal and
        report the completion time (Figure 5)."""
        self._require_pattern("run_batch")
        if self.kernel == "batch":
            raise NotImplementedError(
                "kernel='batch' does not implement the dynamic-response "
                "(Figure 5) batch run; use the event kernel"
            )
        self._consume()
        started = time.perf_counter()
        process = BatchInjection(batch_size)
        process.start(
            self.topology.num_terminals, self.config.packet_size, self.injection_rng
        )
        step = self._select_step()
        while True:
            step(process)
            if process.exhausted() and self.in_flight == 0:
                break
            if self.now >= max_cycles:
                raise RuntimeError(
                    f"batch of {batch_size} not drained within {max_cycles} cycles"
                )
        stats = self._finish_stats(started)
        return BatchResult(
            batch_size=batch_size,
            completion_cycles=self.now,
            packets=self.packets_created,
            packets_undeliverable=self.packets_undeliverable,
            kernel=stats,
        )

    def measure_saturation_throughput(
        self, warmup: int = 1000, measure: int = 1000
    ) -> float:
        """Accepted throughput at an offered load of 1.0 — the
        throughput plateau of the latency-load curves."""
        self._require_pattern("measure_saturation_throughput")
        if self.kernel == "batch":
            return self.measure_saturation_throughput_batch(
                seeds=(self.config.seed,), warmup=warmup, measure=measure
            )[0]
        self._consume()
        started = time.perf_counter()
        process = BernoulliInjection(1.0)
        process.start(
            self.topology.num_terminals, self.config.packet_size, self.injection_rng
        )
        window = MeasurementWindow(warmup, warmup + measure)
        self._window = window
        step = self._select_step()
        for _ in range(warmup + measure):
            step(process)
        self._finish_stats(started)
        return window.throughput(self.topology.num_terminals)

    # ------------------------------------------------------------------
    # Batched runs (kernel="batch")
    # ------------------------------------------------------------------
    def _batch_backend(self, engine: Optional[str] = None):
        self._require_pattern("run_open_loop_batch")
        if self.kernel != "batch":
            raise ValueError(
                f"batched runs require kernel='batch', this simulator was "
                f"built with kernel={self.kernel!r}"
            )
        self._consume()
        from .batch import BatchBackend

        return BatchBackend(
            self.topology, self.algorithm, self.pattern, self.config,
            engine=engine,
        )

    def _batch_seeds(self, replicas, seeds) -> Tuple[int, ...]:
        from .config import replica_seeds

        if (replicas is None) == (seeds is None):
            raise ValueError("pass exactly one of replicas= or seeds=")
        if seeds is not None:
            return tuple(seeds)
        return replica_seeds(self.config.seed, replicas)

    def run_open_loop_batch(
        self,
        load: float,
        replicas: Optional[int] = None,
        seeds: Optional[Tuple[int, ...]] = None,
        warmup: int = 1000,
        measure: int = 1000,
        drain_max: int = 100_000,
        engine: Optional[str] = None,
    ):
        """Batched :meth:`run_open_loop`: one measurement per replica
        seed, advanced in lockstep by the vectorized backend.

        Pass either ``replicas`` (seeds come from
        :func:`repro.network.config.replica_seeds`, so replica 0 uses
        this config's own seed) or an explicit ``seeds`` tuple.
        ``engine`` picks the batch execution engine (``"numpy"`` or
        ``"jit"``; default ``$REPRO_BATCH_ENGINE``, else numpy) — the
        engines are bit-identical, so the choice never affects
        results.  Returns a
        :class:`repro.network.batch.BatchRunResult`.
        """
        run_seeds = self._batch_seeds(replicas, seeds)
        return self._batch_backend(engine).run_open_loop(
            load, run_seeds, warmup=warmup, measure=measure,
            drain_max=drain_max,
        )

    def run_open_loop_grid(
        self,
        loads: Sequence[float],
        replicas: Optional[int] = None,
        seeds: Optional[Tuple[int, ...]] = None,
        warmup: int = 1000,
        measure: int = 1000,
        drain_max: int = 100_000,
        engine: Optional[str] = None,
    ):
        """Whole-curve :meth:`run_open_loop_batch`: every ``(load,
        seed)`` pair advances in lockstep as one array program, and the
        result is one :class:`repro.network.batch.BatchRunResult` per
        load — element ``i`` bit-identical to
        ``run_open_loop_batch(loads[i], seeds=...)`` (per-run purity),
        so per-point cache keys and downstream consumers are
        unaffected by the grid batching.  ``engine`` selects the batch
        execution engine exactly as in :meth:`run_open_loop_batch`."""
        run_seeds = self._batch_seeds(replicas, seeds)
        return self._batch_backend(engine).run_load_grid(
            loads, run_seeds, warmup=warmup, measure=measure,
            drain_max=drain_max,
        )

    def measure_saturation_throughput_batch(
        self,
        replicas: Optional[int] = None,
        seeds: Optional[Tuple[int, ...]] = None,
        warmup: int = 1000,
        measure: int = 1000,
        engine: Optional[str] = None,
    ) -> List[float]:
        """Batched :meth:`measure_saturation_throughput`: one
        accepted-throughput value per replica seed."""
        run_seeds = self._batch_seeds(replicas, seeds)
        return self._batch_backend(engine).measure_saturation(
            run_seeds, warmup=warmup, measure=measure
        )
