"""Input virtual-channel buffers and output-port state.

These are the router's flow-control data structures:

* :class:`InputVC` — one FIFO flit buffer per (input port, VC), holding
  the locked routing decision of the packet at its head.
* :class:`OutPort` — per-VC output staging FIFOs fed by the switch,
  per-VC credit counters (mirroring the downstream input buffer, as in
  credit-based flow control), the VC-ownership table that keeps
  wormhole packets from interleaving on a virtual channel, and the
  *pending* counters that make committed-but-unsent flits visible to
  the routing allocators (Section 3.1's greedy vs. sequential
  distinction).

The output staging FIFOs exist because the paper's routers are
input-queued *with sufficient switch speedup* so that "routers do not
become the bottleneck of the network" (Section 3.2).  Without speedup
an input-queued router saturates at the ~59% head-of-line-blocking
limit on uniform traffic; the switch therefore moves multiple flits per
cycle from input heads into the staging FIFOs, and each channel drains
its staging FIFOs at one flit per cycle.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from .packet import Flit, Packet

# Output-port kinds.
CHANNEL_PORT = 0
EJECTION_PORT = 1

# Input-port kinds.
CHANNEL_INPUT = 0
INJECTION_INPUT = 1

# Effectively-infinite credits for ejection (sink) ports.
_SINK_CREDITS = 1 << 30


class InputVC:
    """One virtual-channel FIFO at a router input port."""

    __slots__ = ("in_port", "vc", "depth", "fifo", "route_port", "route_vc", "order")

    def __init__(self, in_port: int, vc: int, depth: int, order: int) -> None:
        self.in_port = in_port
        self.vc = vc
        self.depth = depth
        self.fifo: Deque[Flit] = deque()
        # Locked routing decision of the packet currently at the head
        # (None until the head flit has been routed).
        self.route_port: Optional[int] = None
        self.route_vc: Optional[int] = None
        # Dense index used for round-robin arbitration ordering.
        self.order = order

    def head(self) -> Flit:
        return self.fifo[0]

    def occupancy(self) -> int:
        return len(self.fifo)

    def has_space(self) -> bool:
        return len(self.fifo) < self.depth

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<InputVC port={self.in_port} vc={self.vc} "
            f"{len(self.fifo)}/{self.depth} route={self.route_port}>"
        )


class OutPort:
    """Credit, staging, and allocation state for one output port."""

    __slots__ = (
        "index",
        "kind",
        "channel_index",
        "terminal",
        "num_vcs",
        "vc_depth",
        "staging_depth",
        "staging",
        "credits",
        "pending",
        "owner",
        "rr_pointer",
        "wire_pointer",
        "next_free",
        "occ",
    )

    def __init__(
        self,
        index: int,
        kind: int,
        num_vcs: int,
        vc_depth: int,
        staging_depth: int,
        channel_index: int = -1,
        terminal: int = -1,
    ) -> None:
        self.index = index
        self.kind = kind
        self.channel_index = channel_index
        self.terminal = terminal
        self.num_vcs = num_vcs
        self.vc_depth = vc_depth
        self.staging_depth = staging_depth
        self.staging: List[Deque[Flit]] = [deque() for _ in range(num_vcs)]
        if kind == EJECTION_PORT:
            self.credits = [_SINK_CREDITS] * num_vcs
        else:
            self.credits = [vc_depth] * num_vcs
        # Flits committed to this port by a locked route but still
        # sitting in an input buffer.  Greedy allocators apply the
        # debit of a routing cycle "en masse" after all inputs decide;
        # sequential allocators apply it between decisions.
        self.pending = [0] * num_vcs
        # Wormhole ownership: the packet currently streaming into each
        # staging VC (flits of two packets must not interleave on one
        # virtual channel).
        self.owner: List[Optional[Packet]] = [None] * num_vcs
        self.rr_pointer = 0
        self.wire_pointer = 0
        # Earliest cycle the (possibly sub-unit-bandwidth) channel can
        # accept its next flit.
        self.next_free = 0
        # Incrementally maintained mirror of :meth:`occupancy` for
        # channel ports — the derived value routing polls constantly.
        # It changes at exactly two points: a routing commit adds the
        # packet size (``pending`` grows) and a returning credit
        # subtracts one (``credits`` grows).  The switch move
        # (pending -> staging) and the wire send (staging -> in
        # flight) are occupancy-neutral, so nothing else touches it.
        # Ejection ports never maintain it (their occupancy reads as 0
        # regardless).  :meth:`occupancy` still *computes* its answer,
        # so tests can cross-check the counter against ground truth
        # (see ``Simulator.check_activation_invariants``).
        self.occ = 0

    def occupancy(self) -> int:
        """Estimated queue length, summed over VCs: staged flits plus
        downstream/in-flight flits plus committed-but-unsent flits.

        Computed from first principles; the hot paths read the
        incrementally maintained ``occ`` mirror instead.
        """
        if self.kind == EJECTION_PORT:
            return 0
        total = 0
        depth = self.vc_depth
        credits = self.credits
        pending = self.pending
        staging = self.staging
        for vc in range(self.num_vcs):
            total += depth - credits[vc] + pending[vc] + len(staging[vc])
        return total

    def occupancy_vc(self, vc: int) -> int:
        """Estimated queue length of a single output VC."""
        if self.kind == EJECTION_PORT:
            return 0
        return (
            self.vc_depth
            - self.credits[vc]
            + self.pending[vc]
            + len(self.staging[vc])
        )

    def staged_flits(self) -> int:
        """Flits currently in this port's staging FIFOs."""
        return sum(len(q) for q in self.staging)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "ej" if self.kind == EJECTION_PORT else f"ch{self.channel_index}"
        return f"<OutPort {self.index} {kind} credits={self.credits}>"
