"""Packet-injection processes.

Open-loop experiments use a Bernoulli process per terminal, as in the
paper ("Packets are injected using a Bernoulli process", Section 3.2).
The dynamic-response experiment of Figure 5 instead delivers a fixed
batch of packets per terminal at time zero and measures drain time.
"""

from __future__ import annotations

import abc
import math
import random
from typing import Dict, List, Optional, Tuple


class InjectionProcess(abc.ABC):
    """Decides, per cycle, which terminals create how many packets."""

    @abc.abstractmethod
    def start(self, num_terminals: int, packet_size: int, rng: random.Random) -> None:
        """Reset state for a fresh simulation."""

    @abc.abstractmethod
    def injections(self, now: int) -> List[Tuple[int, int]]:
        """``(terminal, packet_count)`` pairs for cycle ``now``."""

    @abc.abstractmethod
    def exhausted(self) -> bool:
        """True when no further packets will ever be injected."""

    def next_injection_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle ``>= now`` at which this process may inject,
        or ``None`` if no further packets will ever be injected.

        The event kernel uses this to jump over quiescent stretches:
        whenever the network holds no flit at all, it advances ``now``
        straight to this cycle without executing the cycles in between.
        The contract is therefore:

        * The returned cycle must be a **lower bound**: ``injections``
          must return ``[]`` for every cycle in ``[now, returned)``.
          Returning a cycle later than the true next injection makes
          the kernel *swallow* injections; returning one earlier is
          merely slower (the kernel steps idle cycles it could have
          skipped).
        * ``None`` is a promise that ``injections`` returns ``[]``
          forever after — the run may terminate as soon as the network
          drains.
        * The method must not mutate state or draw RNG: it may be
          called on cycles that are subsequently skipped, and is never
          called under the polling kernel, so any side effect would
          desynchronize the two (bit-identical) kernels.

        The conservative default returns ``now`` ("an injection may
        happen immediately"), which keeps custom subclasses *correct*
        but **silently disables idle-skipping** for them — at low load
        the event kernel then executes every quiescent cycle one by
        one.  Subclasses that know their schedule (calendar-based
        processes like :class:`BernoulliInjection`, or workload sources
        with reply calendars) should override it;
        ``tests/test_workloads.py`` pins both behaviors.
        """
        return now


class BernoulliInjection(InjectionProcess):
    """Each terminal independently injects a packet with probability
    ``load / packet_size`` per cycle, giving an offered load of
    ``load`` flits per node per cycle.

    Implemented by sampling geometric inter-injection gaps into a
    calendar, so per-cycle work is proportional to the number of
    injections rather than the number of terminals.
    """

    def __init__(self, load: float) -> None:
        if not 0.0 < load <= 1.0:
            raise ValueError(f"offered load must be in (0, 1], got {load}")
        self.load = load
        self._calendar: Dict[int, List[int]] = {}
        self._stopped = False
        self._every: Optional[List[Tuple[int, int]]] = None

    def start(self, num_terminals: int, packet_size: int, rng: random.Random) -> None:
        rate = self.load / packet_size
        if rate > 1.0:
            raise ValueError(
                f"load {self.load} with packet size {packet_size} exceeds one "
                f"packet per cycle per terminal"
            )
        self._rate = rate
        self._rng = rng
        self._calendar = {}
        self._stopped = False
        self._log_q = math.log1p(-rate) if rate < 1.0 else None
        if self._log_q is None:
            # rate == 1.0: every terminal injects every cycle and no
            # gap is ever drawn, so the calendar machinery degenerates
            # to returning the same (terminal, 1) list each cycle —
            # precompute it once instead of popping and rescheduling
            # every terminal every cycle.  The returned pairs and their
            # order are identical to what the calendar would produce.
            self._every = [(terminal, 1) for terminal in range(num_terminals)]
            return
        self._every = None
        for terminal in range(num_terminals):
            self._schedule(terminal, -1)

    def _schedule(self, terminal: int, now: int) -> None:
        if self._log_q is None:  # rate == 1.0: inject every cycle
            gap = 1
        else:
            u = self._rng.random()
            gap = 1 + int(math.log(1.0 - u) / self._log_q)
        calendar = self._calendar
        cycle = now + gap
        slot = calendar.get(cycle)
        if slot is None:
            calendar[cycle] = [terminal]
        else:
            slot.append(terminal)

    def stop(self) -> None:
        """Stop generating new packets (used while draining)."""
        self._stopped = True
        self._calendar.clear()

    def injections(self, now: int) -> List[Tuple[int, int]]:
        if self._stopped:
            return []
        if self._every is not None:
            return self._every
        terminals = self._calendar.pop(now, None)
        if not terminals:
            return []
        for terminal in terminals:
            self._schedule(terminal, now)
        return [(terminal, 1) for terminal in terminals]

    def exhausted(self) -> bool:
        return self._stopped

    def next_injection_cycle(self, now: int) -> Optional[int]:
        if self._stopped:
            return None
        if self._every is not None:
            return now
        # One calendar entry per terminal, so this is O(terminals) —
        # paid only when the whole network is quiescent.
        if not self._calendar:
            return None
        return min(self._calendar)


class BatchInjection(InjectionProcess):
    """Every terminal receives ``batch_size`` packets at cycle zero
    (Figure 5's dynamic-response workload)."""

    def __init__(self, batch_size: int) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        self._done = False

    def start(self, num_terminals: int, packet_size: int, rng: random.Random) -> None:
        self._num_terminals = num_terminals
        self._done = False

    def injections(self, now: int) -> List[Tuple[int, int]]:
        if self._done or now != 0:
            return []
        self._done = True
        return [(t, self.batch_size) for t in range(self._num_terminals)]

    def exhausted(self) -> bool:
        return self._done

    def next_injection_cycle(self, now: int) -> Optional[int]:
        return None if self._done else 0
