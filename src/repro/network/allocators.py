"""Routing allocators: greedy vs. sequential (Section 3.1).

The paper distinguishes two ways a router turns per-input routing
decisions into queue-state updates within one routing cycle:

* **Greedy** — "all inputs make their routing decisions in parallel and
  then, the queuing state is updated en mass."  Every input sees the
  same (stale) queue estimates; when the minimal queue is short, all
  inputs pile onto it, causing the transient load imbalance of
  Figure 5.
* **Sequential** — "each input makes its routing decision in sequence
  and updates the queuing state before the next input makes its
  decision," eliminating that source of imbalance (UGAL-S, CLOS AD).

The allocator controls *when* the pending-flit debit of each decision
becomes visible; the debit itself lives in
:class:`repro.network.buffers.OutPort.pending`.
"""

from __future__ import annotations

import abc
from typing import List, Tuple


class Allocator(abc.ABC):
    """Policy for applying routing-decision debits within a cycle."""

    name: str = "allocator"

    @abc.abstractmethod
    def begin_cycle(self) -> None:
        """Reset per-cycle state before a router's routing phase."""

    @abc.abstractmethod
    def record(self, out_port, vc: int, flits: int) -> None:
        """Account a decision committing ``flits`` flits to ``(out_port, vc)``."""

    @abc.abstractmethod
    def end_cycle(self) -> None:
        """Apply any deferred debits after all inputs have decided."""


class SequentialAllocator(Allocator):
    """Debits become visible immediately, decision by decision."""

    name = "sequential"

    def begin_cycle(self) -> None:
        pass

    def record(self, out_port, vc: int, flits: int) -> None:
        out_port.pending[vc] += flits
        out_port.occ += flits

    def end_cycle(self) -> None:
        pass


class GreedyAllocator(Allocator):
    """Debits of a routing cycle are applied en masse at its end."""

    name = "greedy"

    def __init__(self) -> None:
        self._deferred: List[Tuple[object, int, int]] = []

    def begin_cycle(self) -> None:
        self._deferred.clear()

    def record(self, out_port, vc: int, flits: int) -> None:
        self._deferred.append((out_port, vc, flits))

    def end_cycle(self) -> None:
        for out_port, vc, flits in self._deferred:
            out_port.pending[vc] += flits
            out_port.occ += flits
        self._deferred.clear()


def make_allocator(sequential: bool) -> Allocator:
    """Build the allocator a routing algorithm asks for."""
    return SequentialAllocator() if sequential else GreedyAllocator()
