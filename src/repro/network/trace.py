"""Time-series instrumentation for the simulator.

Tracers observe the network once per cycle and record the series the
paper's dynamic-response discussion reasons about: instantaneous
accepted throughput, per-channel utilization, and the occupancy of
individual output queues (the "minimal queue" that greedy allocation
overloads in Figure 5).

Attach tracers before running::

    sim = Simulator(topology, algorithm, pattern)
    trace = ThroughputTrace(interval=10)
    sim.attach_tracer(trace)
    sim.run_batch(32)
    print(trace.series)
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..topologies.base import Channel
    from .simulator import Simulator


class Tracer(abc.ABC):
    """Base class for per-cycle observers."""

    #: Whether this tracer can summarize a quiescent stretch via
    #: :meth:`on_idle_gap` instead of being called every cycle.  The
    #: event kernel only skips idle cycles when *every* attached tracer
    #: declares support; the conservative default is False.
    supports_idle_skip = False

    def attach(self, simulator: "Simulator") -> None:
        """Bind to a simulator (called by ``attach_tracer``)."""
        self.simulator = simulator

    @abc.abstractmethod
    def on_cycle(self, now: int) -> None:
        """Observe the network at the end of cycle ``now``."""

    def on_idle_gap(self, start: int, end: int) -> None:
        """Observe the quiescent cycles ``start .. end - 1`` at once.

        Called by the event kernel instead of per-cycle ``on_cycle``
        when it jumps over a stretch with no flits anywhere.  The
        fallback replays ``on_cycle`` for every skipped cycle, which is
        always correct; subclasses that set ``supports_idle_skip``
        override this with an O(1) summary.
        """
        for now in range(start, end):
            self.on_cycle(now)


class ThroughputTrace(Tracer):
    """Accepted flits per terminal per cycle, averaged over fixed
    intervals."""

    supports_idle_skip = True

    def __init__(self, interval: int = 10) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.interval = interval
        self.series: List[float] = []
        self._last_ejected = 0

    def attach(self, simulator: "Simulator") -> None:
        super().attach(simulator)
        self._last_ejected = simulator.flits_ejected

    def on_cycle(self, now: int) -> None:
        if (now + 1) % self.interval:
            return
        sim = self.simulator
        delta = sim.flits_ejected - self._last_ejected
        self._last_ejected = sim.flits_ejected
        self.series.append(delta / (self.interval * sim.topology.num_terminals))

    def on_idle_gap(self, start: int, end: int) -> None:
        # No flit is ejected during a quiescent gap, so the first
        # interval boundary inside it flushes whatever was ejected
        # earlier in that interval and every later boundary reads 0.
        interval = self.interval
        first = start + ((interval - 1 - start) % interval)
        if first >= end:
            return
        self.on_cycle(first)
        remaining = (end - 1 - first) // interval
        if remaining:
            self.series.extend([0.0] * remaining)


class QueueTrace(Tracer):
    """Occupancy of selected output channels, sampled every cycle.

    This is the estimate adaptive routing sees (staged + downstream +
    committed flits); watching the overloaded minimal channel next to
    an idle non-minimal one is Figure 5's transient in the raw.
    """

    def __init__(self, channels: List["Channel"]) -> None:
        if not channels:
            raise ValueError("need at least one channel to trace")
        self.channels = list(channels)
        self.series: Dict[int, List[int]] = {c.index: [] for c in self.channels}

    def on_cycle(self, now: int) -> None:
        sim = self.simulator
        for channel in self.channels:
            engine = sim.engines[channel.src]
            self.series[channel.index].append(engine.channel_occupancy(channel))

    def peak(self, channel: "Channel") -> int:
        """Highest occupancy seen on ``channel``."""
        values = self.series[channel.index]
        return max(values) if values else 0


class PacketJourneyTrace(Tracer):
    """Record the router path of selected packets.

    Pass a predicate over packets (default: trace everything — fine
    for small runs); after the run, ``journey(pid)`` returns the
    ordered list of ``(cycle, router)`` visits, reconstructed from
    channel arrivals.  A debugging tool: a suspect route (e.g. CLOS AD
    supposedly exceeding its folded-Clos hop bound) can be inspected
    hop by hop.
    """

    supports_idle_skip = True  # no flits in flight => nothing to record

    def __init__(self, predicate=None) -> None:
        self.predicate = predicate or (lambda packet: True)
        self.visits: Dict[int, List[Tuple[int, int]]] = {}

    def attach(self, simulator: "Simulator") -> None:
        super().attach(simulator)
        self._channel_dst = {
            pipe.index: pipe.dst_router for pipe in simulator.pipes
        }
        self._seen_in_flight: Dict[int, int] = {}

    def on_cycle(self, now: int) -> None:
        sim = self.simulator
        latency = sim.config.channel_latency
        for pipe in sim._active_pipes:
            for arrival, flit, _vc in pipe.flits:
                if arrival != now + latency:
                    continue
                if not flit.is_head:
                    continue
                packet = flit.packet
                if not self.predicate(packet):
                    continue
                self.visits.setdefault(
                    packet.pid,
                    [(packet.time_injected or 0,
                      sim.topology.injection_router(packet.src))],
                ).append((arrival, pipe.dst_router))

    def on_idle_gap(self, start: int, end: int) -> None:
        """Nothing is in flight during a quiescent gap."""

    def journey(self, pid: int) -> List[Tuple[int, int]]:
        """Ordered ``(cycle, router)`` visits of packet ``pid``."""
        return self.visits.get(pid, [])

    def hops(self, pid: int) -> int:
        """Inter-router hops the packet took."""
        visits = self.visits.get(pid)
        return len(visits) - 1 if visits else 0


class ChannelLoadTrace(Tracer):
    """Cumulative flits carried per channel; ``utilization`` divides by
    elapsed cycles to give each channel's duty factor."""

    supports_idle_skip = True

    def __init__(self) -> None:
        self.flits: Dict[int, int] = {}
        self.cycles = 0

    def attach(self, simulator: "Simulator") -> None:
        super().attach(simulator)
        self.flits = {pipe.index: 0 for pipe in simulator.pipes}

    def on_cycle(self, now: int) -> None:
        # Channel pipes buffer (arrival, flit, vc); flits pushed this
        # cycle are those whose arrival is in the future.
        sim = self.simulator
        self.cycles += 1
        for pipe in sim._active_pipes:
            for arrival, _flit, _vc in pipe.flits:
                if arrival == now + sim.config.channel_latency:
                    self.flits[pipe.index] += 1

    def on_idle_gap(self, start: int, end: int) -> None:
        # Quiescent cycles still elapse; no channel carries anything.
        self.cycles += end - start

    def utilization(self, channel_index: int) -> float:
        """Fraction of cycles ``channel_index`` carried a flit."""
        if self.cycles == 0:
            return 0.0
        return self.flits.get(channel_index, 0) / self.cycles

    def max_utilization(self) -> float:
        """Duty factor of the busiest channel."""
        if self.cycles == 0:
            return 0.0
        return max(self.flits.values(), default=0) / self.cycles
