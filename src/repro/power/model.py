"""The network power model (Section 5.3, Table 5).

Total power is ``P_switch + P_link``:

* ``P_switch`` — 40 W for a full radix-64 router, proportional to the
  router's total bandwidth (scaled by channel attachments, like the
  silicon cost; arbitration/routing overheads are negligible per Wang
  et al.).
* ``P_link`` — per-signal SerDes power, by link class:

  - global cable, 200 mW (``P_link_gg``);
  - local link driven by a global-capable SerDes, 160 mW
    (``P_link_gl``) — what an *indirect* topology must provision,
    since the same router port may face a long cable elsewhere in the
    machine;
  - local link driven by a dedicated short-reach SerDes, 40 mW
    (``P_link_ll``) — available to *direct* topologies (and the
    flattened butterfly), whose packaging fixes which ports are local.

Terminal links are always local and known at design time, so every
topology drives them with dedicated short-reach SerDes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cost.census import Locality, NetworkCensus


@dataclass(frozen=True)
class PowerParameters:
    """Table 5 constants (per router / per signal)."""

    switch_full_router_w: float = 40.0
    base_radix: int = 64
    pairs_per_port: int = 3
    link_global_w: float = 0.200
    link_local_global_serdes_w: float = 0.160
    link_local_dedicated_w: float = 0.040

    def switch_power(self, attachments: int) -> float:
        """Switch power of a router with ``attachments`` channel
        endpoints (proportional to total router bandwidth)."""
        if attachments < 2:
            raise ValueError(f"attachments must be >= 2, got {attachments}")
        return self.switch_full_router_w * attachments / (2 * self.base_radix)

    def link_power_per_channel(self, locality: Locality, direct: bool) -> float:
        """SerDes power of one unidirectional channel."""
        if locality is Locality.GLOBAL:
            per_signal = self.link_global_w
        elif locality is Locality.TERMINAL:
            per_signal = self.link_local_dedicated_w
        elif direct:
            per_signal = self.link_local_dedicated_w
        else:
            per_signal = self.link_local_global_serdes_w
        return self.pairs_per_port * per_signal


@dataclass(frozen=True)
class PowerBreakdown:
    """Power of one packaged network."""

    name: str
    num_terminals: int
    switch_w: float
    link_w: float

    @property
    def total_w(self) -> float:
        return self.switch_w + self.link_w

    @property
    def watts_per_node(self) -> float:
        """Figure 15's y-axis: power normalized to N."""
        return self.total_w / self.num_terminals

    @property
    def link_fraction(self) -> float:
        return self.link_w / self.total_w if self.total_w else 0.0


def power_census(
    census: NetworkCensus, params: Optional[PowerParameters] = None
) -> PowerBreakdown:
    """Evaluate the power model over a :class:`NetworkCensus`."""
    params = params or PowerParameters()
    switch = sum(
        group.count * params.switch_power(group.attachments)
        for group in census.routers
    )
    link = sum(
        group.channels * params.link_power_per_channel(group.locality, census.direct)
        for group in census.links
    )
    return PowerBreakdown(
        name=census.name,
        num_terminals=census.num_terminals,
        switch_w=switch,
        link_w=link,
    )
