"""Network power model (Section 5.3)."""

from .model import PowerBreakdown, PowerParameters, power_census

__all__ = ["PowerBreakdown", "PowerParameters", "power_census"]
