"""Picklable job records for the sweep runner, plus the warm-worker
execution layer.

A :class:`SimSpec` describes *how to build* a simulator rather than
holding a live one, so a job can cross a process boundary and can be
hashed into a stable cache key.  The factory must be a module-level
callable (a function or class); its arguments must be picklable and
describable by :func:`repro.runner.cache.describe`.

A spec may carry a separate **topology sub-spec**
(:meth:`SimSpec.with_topology`): the factory then receives the built
topology as its first positional argument.  Splitting the topology out
lets a worker process recognise that consecutive jobs share a topology
(:meth:`SimSpec.topology_key`) and rebuild it once instead of per job —
and because the shared :class:`~repro.core.routing.table.RouteTable` is
keyed on the topology *object*, reusing the object also reuses every
precomputed routing entry.  Reuse cannot change results: a topology is
immutable once constructed, and the route-table layer is pinned
bit-identical on/off by the kernel-equivalence tests.

:func:`execute_job` is the single per-job worker entry point;
:func:`execute_chunk` runs a batch of jobs and reports the worker's
construction counters so the parent can prove (in
:class:`~repro.runner.sweep.SweepReport`) that warm workers built each
topology at most once.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..network import Simulator

#: Environment toggle for the per-process warm topology cache: set to
#: ``"0"`` to rebuild the topology for every job (PR-4 behavior).
WARM_ENV = "REPRO_WARM"

# Per-process construction counters.  Tests and the sweep report use
# them to prove that a cache hit builds nothing and that warm workers
# build each topology at most once.
_counter_lock = threading.Lock()
_sim_builds_value = 0
_topology_builds_value = 0
_warm_hits_value = 0

# The per-process warm cache: topology description -> topology object.
# Holding the topology alive also keeps its shared RouteTable alive in
# repro.core.routing.table's WeakKeyDictionary.
_warm_topologies: Dict[str, object] = {}

# Tri-state override installed by the pool initializer (and by the
# runner around in-process execution): None defers to $REPRO_WARM.
_warm_override: Optional[bool] = None


def _record_build() -> None:
    global _sim_builds_value
    with _counter_lock:
        _sim_builds_value += 1


def sim_build_count() -> int:
    """Number of simulators built via :meth:`SimSpec.build` in this
    process since import."""
    return _sim_builds_value


def topology_build_count() -> int:
    """Number of topologies constructed through topology sub-specs in
    this process since import."""
    return _topology_builds_value


def warm_hit_count() -> int:
    """Number of topology constructions avoided by the warm cache in
    this process since import."""
    return _warm_hits_value


def warm_enabled() -> bool:
    """Whether the per-process topology cache is active (override from
    the pool initializer wins, else ``$REPRO_WARM``, default on)."""
    if _warm_override is not None:
        return _warm_override
    return os.environ.get(WARM_ENV, "1") != "0"


@contextmanager
def warm_override(enabled: Optional[bool]):
    """Temporarily force warm mode on/off (``None`` is a no-op).  The
    runner wraps in-process job execution with this so a cold runner
    stays cold even when the environment default is warm."""
    global _warm_override
    previous = _warm_override
    _warm_override = enabled if enabled is None else bool(enabled)
    try:
        yield
    finally:
        _warm_override = previous


def clear_warm_cache() -> None:
    """Drop every cached topology (test hook; never required for
    correctness)."""
    _warm_topologies.clear()


def init_worker(warm: Optional[bool]) -> None:
    """Pool initializer: pin warm mode and zero the construction
    counters so every worker reports totals since its own start
    (forked workers otherwise inherit the parent's counts).

    When ``$REPRO_BATCH_ENGINE`` selects the jit batch engine, also
    warm the numba kernel here, once per worker before any job runs:
    with the persistent compile cache this is a cache *load*, so the
    per-job path never pays compilation (and the first-ever worker on
    a machine pays it outside any timed measurement)."""
    global _warm_override, _sim_builds_value, _topology_builds_value
    global _warm_hits_value
    _warm_override = warm if warm is None else bool(warm)
    with _counter_lock:
        _sim_builds_value = 0
        _topology_builds_value = 0
        _warm_hits_value = 0
    _warm_topologies.clear()
    from ..core.routing.table import reset_build_count

    reset_build_count()
    try:
        from ..network.batch import resolve_engine

        if resolve_engine() == "jit":
            from ..network.batch_jit import HAVE_NUMBA, ensure_compiled

            if HAVE_NUMBA:
                ensure_compiled()
    except (ImportError, ValueError):
        # No numpy/numba, or a bogus $REPRO_BATCH_ENGINE: the jobs
        # themselves will raise the clean, named error.
        pass


def build_counters() -> Dict[str, int]:
    """Snapshot of this process's construction counters."""
    from ..core.routing.table import table_build_count

    return {
        "pid": os.getpid(),
        "sim_builds": _sim_builds_value,
        "topology_builds": _topology_builds_value,
        "route_table_builds": table_build_count(),
        "warm_topology_hits": _warm_hits_value,
    }


def _build_topology(topo_spec: "SimSpec"):
    """Build (or fetch from the warm cache) the topology described by
    ``topo_spec``."""
    global _topology_builds_value, _warm_hits_value
    key = topo_spec.describe_key()
    if key is not None and warm_enabled():
        topology = _warm_topologies.get(key)
        if topology is not None:
            with _counter_lock:
                _warm_hits_value += 1
            return topology
    topology = topo_spec.factory(*topo_spec.args, **dict(topo_spec.kwargs))
    with _counter_lock:
        _topology_builds_value += 1
    if key is not None and warm_enabled():
        _warm_topologies[key] = topology
    return topology


@dataclass(frozen=True)
class SimSpec:
    """A deferred, picklable simulator construction.

    Attributes:
        factory: module-level callable returning a
            :class:`~repro.network.Simulator`.
        args: positional arguments for the factory.
        kwargs: keyword arguments, stored as a sorted tuple of
            ``(name, value)`` pairs so the spec stays hashable and its
            cache key is order-independent.
        topology: optional sub-spec describing the topology.  When set,
            the built topology is passed to ``factory`` as its first
            positional argument, and workers may serve it from their
            warm cache (see module docstring).
    """

    factory: Callable[..., Simulator]
    args: Tuple = ()
    kwargs: Tuple[Tuple[str, object], ...] = ()
    topology: Optional["SimSpec"] = None

    @classmethod
    def of(cls, factory: Callable[..., Simulator], *args, **kwargs) -> "SimSpec":
        return cls(factory, tuple(args), tuple(sorted(kwargs.items())))

    def bind(self, *args, **kwargs) -> "SimSpec":
        """Return a new spec with extra arguments appended."""
        merged = dict(self.kwargs)
        merged.update(kwargs)
        return SimSpec(self.factory, self.args + tuple(args),
                       tuple(sorted(merged.items())), self.topology)

    def with_topology(self, factory, *args, **kwargs) -> "SimSpec":
        """Return a new spec carrying a topology sub-spec.  ``factory``
        may be a topology class/factory (with its arguments) or an
        already-built :class:`SimSpec`."""
        if isinstance(factory, SimSpec):
            if args or kwargs:
                raise TypeError(
                    "pass either a ready SimSpec or factory+arguments, not both"
                )
            sub = factory
        else:
            sub = SimSpec.of(factory, *args, **kwargs)
        return SimSpec(self.factory, self.args, self.kwargs, sub)

    def describe_key(self) -> Optional[str]:
        """Canonical JSON string describing this spec, or ``None`` when
        the spec has no stable description (e.g. a lambda factory)."""
        from .cache import describe

        try:
            description = describe(self)
        except TypeError:
            return None
        return json.dumps(description, sort_keys=True, separators=(",", ":"))

    def topology_key(self) -> Optional[str]:
        """Stable identity of this spec's topology sub-spec (``None``
        when the spec builds its topology inside the factory).  Jobs
        with equal topology keys share one topology instance — and one
        bound route table — inside a warm worker."""
        if self.topology is None:
            return None
        return self.topology.describe_key()

    def build(self) -> Simulator:
        _record_build()
        if self.topology is None:
            return self.factory(*self.args, **dict(self.kwargs))
        topology = _build_topology(self.topology)
        return self.factory(topology, *self.args, **dict(self.kwargs))

    # Specs double as the zero-argument ``make_simulator`` callables
    # the experiment helpers historically accepted.
    def __call__(self) -> Simulator:
        return self.build()


@dataclass(frozen=True)
class OpenLoopJob:
    """One point of a latency-load curve."""

    spec: SimSpec
    load: float
    warmup: int
    measure: int
    drain_max: int


@dataclass(frozen=True)
class WorkloadJob:
    """One workload-driven measurement (``Simulator.run_workload``).

    The workload itself travels inside the spec — as a
    :class:`~repro.network.workload.WorkloadSpec` in the simulator
    config (or a factory building the Workload) — so the job's cache
    key covers the full traffic description."""

    spec: SimSpec
    warmup: int
    measure: int
    drain_max: int


@dataclass(frozen=True)
class SaturationJob:
    """One accepted-throughput measurement at offered load 1.0."""

    spec: SimSpec
    warmup: int
    measure: int


@dataclass(frozen=True)
class BatchJob:
    """One batch (dynamic-response) run."""

    spec: SimSpec
    batch_size: int
    max_cycles: int = 1_000_000


@dataclass(frozen=True)
class BatchOpenLoopJob:
    """A whole batch of open-loop replicas at one load point, executed
    in lockstep by the vectorized backend (the spec must build a
    ``kernel="batch"`` simulator).  Returns a
    :class:`~repro.network.batch.BatchRunResult`."""

    spec: SimSpec
    load: float
    seeds: Tuple[int, ...]
    warmup: int
    measure: int
    drain_max: int


@dataclass(frozen=True)
class BatchGridJob:
    """A whole ``(load x seed)`` grid of open-loop replicas, executed
    as one lockstep array program by the vectorized backend (the spec
    must build a ``kernel="batch"`` simulator).  Returns a list of
    :class:`~repro.network.batch.BatchRunResult`, one per load, each
    bit-identical to the corresponding :class:`BatchOpenLoopJob`
    result (per-run purity), so per-point cache entries stay valid."""

    spec: SimSpec
    loads: Tuple[float, ...]
    seeds: Tuple[int, ...]
    warmup: int
    measure: int
    drain_max: int


@dataclass(frozen=True)
class BatchSaturationJob:
    """A batch of saturation-throughput replicas (offered load 1.0)
    executed in lockstep; returns one float per seed."""

    spec: SimSpec
    seeds: Tuple[int, ...]
    warmup: int
    measure: int


@dataclass(frozen=True)
class CallableJob:
    """An arbitrary metric evaluation, e.g. one seed of a
    :func:`~repro.experiments.common.replicate` call.  The callable
    must be module-level (or otherwise picklable and describable)."""

    fn: Callable
    args: Tuple = ()
    kwargs: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def of(cls, fn: Callable, *args, **kwargs) -> "CallableJob":
        return cls(fn, tuple(args), tuple(sorted(kwargs.items())))


def execute_job(job):
    """Run one job to completion and return its result record.

    This is the sole per-job entry point executed inside worker
    processes; it must stay importable at module level so jobs pickle
    by reference.
    """
    if isinstance(job, OpenLoopJob):
        return job.spec.build().run_open_loop(
            job.load, warmup=job.warmup, measure=job.measure,
            drain_max=job.drain_max,
        )
    if isinstance(job, WorkloadJob):
        return job.spec.build().run_workload(
            warmup=job.warmup, measure=job.measure, drain_max=job.drain_max
        )
    if isinstance(job, SaturationJob):
        return job.spec.build().measure_saturation_throughput(
            job.warmup, job.measure
        )
    if isinstance(job, BatchJob):
        return job.spec.build().run_batch(job.batch_size, job.max_cycles)
    if isinstance(job, BatchOpenLoopJob):
        return job.spec.build().run_open_loop_batch(
            job.load, seeds=job.seeds, warmup=job.warmup,
            measure=job.measure, drain_max=job.drain_max,
        )
    if isinstance(job, BatchGridJob):
        return job.spec.build().run_open_loop_grid(
            list(job.loads), seeds=job.seeds, warmup=job.warmup,
            measure=job.measure, drain_max=job.drain_max,
        )
    if isinstance(job, BatchSaturationJob):
        return job.spec.build().measure_saturation_throughput_batch(
            seeds=job.seeds, warmup=job.warmup, measure=job.measure
        )
    if isinstance(job, CallableJob):
        return job.fn(*job.args, **dict(job.kwargs))
    raise TypeError(f"unknown job type {type(job).__name__}")


def execute_chunk(jobs: List) -> Tuple[List, Dict[str, int]]:
    """Run a batch of jobs in this worker and return ``(results,
    counters)``, where ``counters`` are the worker's total construction
    counts since it started (the parent diffs consecutive reports per
    pid).  Chunking amortizes submit/pickle overhead and keeps the
    per-future accounting cheap."""
    return [execute_job(job) for job in jobs], build_counters()
