"""Picklable job records for the sweep runner.

A :class:`SimSpec` describes *how to build* a simulator rather than
holding a live one, so a job can cross a process boundary and can be
hashed into a stable cache key.  The factory must be a module-level
callable (a function or class); its arguments must be picklable and
describable by :func:`repro.runner.cache.describe`.

:func:`execute_job` is the single worker entry point: it rebuilds the
simulator inside the worker process and runs exactly one measurement,
so results are independent of which process (or which order) ran them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Tuple

from ..network import Simulator

# Counts every simulator constructed through a SimSpec in *this*
# process.  Tests use it to prove that a cache hit builds nothing.
_sim_builds_lock = threading.Lock()
_sim_builds_value = 0


def _record_build() -> None:
    global _sim_builds_value
    with _sim_builds_lock:
        _sim_builds_value += 1


def sim_build_count() -> int:
    """Number of simulators built via :meth:`SimSpec.build` in this
    process since import."""
    return _sim_builds_value


@dataclass(frozen=True)
class SimSpec:
    """A deferred, picklable simulator construction.

    Attributes:
        factory: module-level callable returning a
            :class:`~repro.network.Simulator`.
        args: positional arguments for the factory.
        kwargs: keyword arguments, stored as a sorted tuple of
            ``(name, value)`` pairs so the spec stays hashable and its
            cache key is order-independent.
    """

    factory: Callable[..., Simulator]
    args: Tuple = ()
    kwargs: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def of(cls, factory: Callable[..., Simulator], *args, **kwargs) -> "SimSpec":
        return cls(factory, tuple(args), tuple(sorted(kwargs.items())))

    def bind(self, *args, **kwargs) -> "SimSpec":
        """Return a new spec with extra arguments appended."""
        merged = dict(self.kwargs)
        merged.update(kwargs)
        return SimSpec(self.factory, self.args + tuple(args),
                       tuple(sorted(merged.items())))

    def build(self) -> Simulator:
        _record_build()
        return self.factory(*self.args, **dict(self.kwargs))

    # Specs double as the zero-argument ``make_simulator`` callables
    # the experiment helpers historically accepted.
    def __call__(self) -> Simulator:
        return self.build()


@dataclass(frozen=True)
class OpenLoopJob:
    """One point of a latency-load curve."""

    spec: SimSpec
    load: float
    warmup: int
    measure: int
    drain_max: int


@dataclass(frozen=True)
class SaturationJob:
    """One accepted-throughput measurement at offered load 1.0."""

    spec: SimSpec
    warmup: int
    measure: int


@dataclass(frozen=True)
class BatchJob:
    """One batch (dynamic-response) run."""

    spec: SimSpec
    batch_size: int
    max_cycles: int = 1_000_000


@dataclass(frozen=True)
class CallableJob:
    """An arbitrary metric evaluation, e.g. one seed of a
    :func:`~repro.experiments.common.replicate` call.  The callable
    must be module-level (or otherwise picklable and describable)."""

    fn: Callable
    args: Tuple = ()
    kwargs: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def of(cls, fn: Callable, *args, **kwargs) -> "CallableJob":
        return cls(fn, tuple(args), tuple(sorted(kwargs.items())))


def execute_job(job):
    """Run one job to completion and return its result record.

    This is the sole entry point executed inside worker processes; it
    must stay importable at module level so jobs pickle by reference.
    """
    if isinstance(job, OpenLoopJob):
        return job.spec.build().run_open_loop(
            job.load, warmup=job.warmup, measure=job.measure,
            drain_max=job.drain_max,
        )
    if isinstance(job, SaturationJob):
        return job.spec.build().measure_saturation_throughput(
            job.warmup, job.measure
        )
    if isinstance(job, BatchJob):
        return job.spec.build().run_batch(job.batch_size, job.max_cycles)
    if isinstance(job, CallableJob):
        return job.fn(*job.args, **dict(job.kwargs))
    raise TypeError(f"unknown job type {type(job).__name__}")
