"""Parallel experiment execution with an on-disk result cache.

Every data point in the paper's evaluation is an independent
simulation: one :class:`~repro.network.Simulator` is built, run once,
and discarded.  This package turns that independence into speed:

* :class:`SimSpec` — a picklable, hashable *description* of a
  simulator (factory + arguments) instead of a live instance,
* :mod:`~repro.runner.jobs` — job records pairing a spec with one
  measurement (open-loop point, saturation probe, batch run),
* :class:`ResultCache` — a content-addressed on-disk cache keyed by a
  stable hash of the full job description and a version stamp,
* :class:`SweepRunner` — fans jobs out over a process pool (or runs
  them serially for ``jobs=1``) with identical results either way.

Results are bit-identical between serial and parallel execution
because each job carries its own deterministic seed and every
simulator is constructed inside the job from the same description.
Warm workers (see :mod:`~repro.runner.jobs`) may reuse a topology
object across jobs, which cannot perturb results because topologies
are immutable after construction.
"""

from .cache import CACHE_VERSION, ResultCache, describe, job_key
from .grid import run_batch_grid
from .jobs import (
    BatchGridJob,
    BatchJob,
    BatchOpenLoopJob,
    BatchSaturationJob,
    CallableJob,
    OpenLoopJob,
    SaturationJob,
    SimSpec,
    WorkloadJob,
    build_counters,
    clear_warm_cache,
    execute_chunk,
    execute_job,
    init_worker,
    sim_build_count,
    topology_build_count,
    warm_enabled,
    warm_hit_count,
    warm_override,
)
from .sweep import SweepReport, SweepRunner, resolve_jobs, stderr_progress

__all__ = [
    "BatchGridJob",
    "BatchJob",
    "BatchOpenLoopJob",
    "BatchSaturationJob",
    "CACHE_VERSION",
    "CallableJob",
    "OpenLoopJob",
    "ResultCache",
    "SaturationJob",
    "SimSpec",
    "SweepReport",
    "SweepRunner",
    "WorkloadJob",
    "build_counters",
    "clear_warm_cache",
    "describe",
    "execute_chunk",
    "execute_job",
    "init_worker",
    "job_key",
    "resolve_jobs",
    "run_batch_grid",
    "sim_build_count",
    "stderr_progress",
    "topology_build_count",
    "warm_enabled",
    "warm_hit_count",
    "warm_override",
]
