"""The sweep engine: fan independent jobs over a process pool.

``SweepRunner.map`` preserves input order, consults the result cache
before executing anything, and falls back to in-process execution for
``jobs=1`` (or for jobs that cannot cross a process boundary), so the
serial and parallel paths return bit-identical results.

Three sweep-scale mechanisms live here (all results-neutral — they
change *when and where* a job runs, never what it computes):

* **Warm workers.**  The worker pool is created once per runner and
  reused across every ``map`` call, with an initializer that arms the
  per-worker topology cache (see :mod:`repro.runner.jobs`): all jobs
  whose specs share a topology sub-spec reuse one topology instance —
  and therefore one bound
  :class:`~repro.core.routing.table.RouteTable` — inside each worker.
  The report's build counters prove it (``topology_builds`` stays at
  or below workers x distinct topologies).
* **Adaptive scheduling.**  Pending jobs are dispatched
  longest-expected-first, using cycle counts observed from earlier
  points at the same offered load as the cost signal (and the offered
  load itself before any observation exists: points near saturation
  run longest).  Jobs travel in small chunks to amortize submit
  overhead.  Results are reassembled into input order, so ordering is
  purely a wall-clock optimization.
* **Replica statistics.**  ``SweepReport`` aggregates the replica
  summaries produced by :func:`repro.experiments.common.replicate` /
  ``replicate_jobs`` (sample counts, early stops) next to the kernel
  stats.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from . import jobs as _jobs_module
from .cache import ResultCache
from .jobs import execute_chunk, execute_job, init_worker, warm_override

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``$REPRO_JOBS``, else 1.

    ``jobs=0`` (or ``REPRO_JOBS=0``) means "one worker per CPU"."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV)
        if env is not None:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(f"{JOBS_ENV} must be an integer, got {env!r}")
        else:
            jobs = 1
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1 (or 0 for all CPUs), got {jobs}")
    return jobs


@dataclass
class SweepReport:
    """Running totals across every ``map`` call of one runner.

    Besides the point/caching counters, the report aggregates the
    :class:`~repro.network.KernelStats` attached to every result a
    sweep actually *executed* (cache hits are excluded — their stats
    describe some earlier run's work, not this one's), the
    construction counters that prove warm-worker reuse, and replica
    summaries.
    """

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    elapsed: float = 0.0
    batches: int = 0
    # Aggregated KernelStats over executed points.
    sim_cycles: int = 0
    idle_cycles_skipped: int = 0
    router_phase_calls: int = 0
    events_dispatched: int = 0
    sim_wall_seconds: float = 0.0
    route_calls: int = 0
    flits_allocated: int = 0
    flits_reused: int = 0
    phase_seconds: Optional[dict] = None
    # Construction counters summed over the parent and every worker
    # (each counted since its own start; see jobs.build_counters).
    sim_builds: int = 0
    topology_builds: int = 0
    route_table_builds: int = 0
    warm_topology_hits: int = 0
    #: Distinct worker processes that have reported counters.
    workers: int = 0
    # Replica statistics (note_replicated).
    replicated_metrics: int = 0
    replica_samples: int = 0
    replica_early_stops: int = 0

    def note(self, total: int, hits: int, executed: int, elapsed: float) -> None:
        self.total += total
        self.cache_hits += hits
        self.executed += executed
        self.elapsed += elapsed
        self.batches += 1

    def note_kernel(self, stats) -> None:
        """Fold one result's :class:`KernelStats` into the totals.

        Tolerates stats records predating a field (older cached
        results) by treating them as zero."""
        self.sim_cycles += stats.cycles
        self.idle_cycles_skipped += stats.idle_cycles_skipped
        self.router_phase_calls += stats.router_phase_calls
        self.events_dispatched += stats.events_dispatched
        self.sim_wall_seconds += stats.wall_seconds
        self.route_calls += getattr(stats, "route_calls", 0)
        self.flits_allocated += getattr(stats, "flits_allocated", 0)
        self.flits_reused += getattr(stats, "flits_reused", 0)
        phases = getattr(stats, "phase_seconds", None)
        if phases:
            from ..profiling import merge_phase_seconds

            if self.phase_seconds is None:
                self.phase_seconds = {}
            merge_phase_seconds(self.phase_seconds, phases)

    def note_builds(self, delta: Dict[str, int]) -> None:
        """Fold one process's construction-counter delta into the
        totals."""
        self.sim_builds += delta.get("sim_builds", 0)
        self.topology_builds += delta.get("topology_builds", 0)
        self.route_table_builds += delta.get("route_table_builds", 0)
        self.warm_topology_hits += delta.get("warm_topology_hits", 0)

    def note_replicated(self, replicated, early_stopped: bool = False) -> None:
        """Record one replicate() / replicate_jobs() summary."""
        self.replicated_metrics += 1
        self.replica_samples += replicated.count
        if early_stopped:
            self.replica_early_stops += 1

    def summary(self) -> str:
        text = (
            f"{self.total} points, {self.cache_hits} cache hits, "
            f"{self.executed} executed, {self.elapsed:.1f}s"
        )
        if self.sim_cycles:
            text += (
                f"; {self.sim_cycles} simulated cycles "
                f"({self.idle_cycles_skipped} idle-skipped), "
                f"{self.router_phase_calls} router-phase calls, "
                f"{self.events_dispatched} events"
            )
        if self.sim_builds:
            text += (
                f"; {self.sim_builds} simulators built over "
                f"{self.topology_builds} topologies / "
                f"{self.route_table_builds} route tables "
                f"({self.warm_topology_hits} warm hits"
            )
            text += f", {self.workers} workers)" if self.workers else ")"
        if self.replicated_metrics:
            text += (
                f"; {self.replicated_metrics} replicated metrics over "
                f"{self.replica_samples} samples"
            )
            if self.replica_early_stops:
                text += f" ({self.replica_early_stops} early-stopped)"
        return text


def _cost_signal(job) -> float:
    """A load-like proxy for how long a job runs, comparable within one
    job type: offered load for open-loop points (saturated points must
    drain and run longest), 1.0 for saturation probes, the batch size
    for batch runs."""
    load = getattr(job, "load", None)
    if load is not None:
        return float(load)
    batch = getattr(job, "batch_size", None)
    if batch is not None:
        return float(batch)
    return 1.0


class CostModel:
    """Observed-cost estimator behind longest-expected-first dispatch.

    Records the simulated cycle count of completed jobs per (job type,
    cost signal) and predicts relative cost for unseen jobs: the exact
    observation when one exists, the nearest observed signal scaled by
    saturation proximity otherwise, and the raw signal before any
    observation.  Shared by :class:`SweepRunner` (process pool) and the
    fabric coordinator (multi-host lease queue)."""

    def __init__(self) -> None:
        # job type name -> {cost signal -> observed simulated cycles}.
        self._costs: Dict[str, Dict[float, float]] = {}

    def expected(self, job) -> float:
        kind = type(job).__name__
        signal = _cost_signal(job)
        history = self._costs.get(kind)
        if history:
            exact = history.get(signal)
            if exact is not None:
                return exact
            nearest = min(history, key=lambda s: abs(s - signal))
            return history[nearest] * (0.1 + signal) / (0.1 + nearest)
        return signal

    def observe(self, job, value) -> None:
        stats = getattr(value, "kernel", None)
        cycles = getattr(stats, "cycles", 0) if stats is not None else 0
        if cycles:
            self._costs.setdefault(type(job).__name__, {})[
                _cost_signal(job)] = float(cycles)


class SweepRunner:
    """Executes independent simulation jobs, optionally in parallel
    and optionally through a :class:`ResultCache`.

    Args:
        jobs: worker processes; ``None`` reads ``$REPRO_JOBS``
            (default 1 — fully serial, no subprocesses), ``0`` means
            one per CPU.
        cache: a :class:`ResultCache`, or ``None`` to always execute.
        progress: optional callback ``progress(done, total, job)``
            invoked after every completed point (cache hits included).
        warm: per-worker topology reuse (see
            :mod:`repro.runner.jobs`); ``None`` reads ``$REPRO_WARM``
            (default on).  ``warm=False`` rebuilds the topology for
            every job — bit-identical results, PR-4 cost.
        persistent: keep one worker pool alive across ``map`` calls
            (default).  ``False`` restores the spawn-a-pool-per-map
            behavior, which also empties each worker's topology cache
            between maps.
        adaptive: dispatch pending jobs longest-expected-first in small
            chunks (default).  ``False`` submits one future per job in
            input order.
        chunk: jobs per worker submission under adaptive dispatch
            (``None`` — size chosen from the batch: 1 for small maps,
            up to 8 for paper-scale replica sweeps).
        pool_rebuilds: how many times one ``map`` call may rebuild a
            pool that broke (a worker process was killed or died) and
            resubmit the lost chunks before giving up and raising
            ``BrokenProcessPool``.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[Callable[[int, int, object], None]] = None,
        warm: Optional[bool] = None,
        persistent: bool = True,
        adaptive: bool = True,
        chunk: Optional[int] = None,
        pool_rebuilds: int = 2,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.progress = progress
        self.warm = _jobs_module.warm_enabled() if warm is None else bool(warm)
        self.persistent = persistent
        self.adaptive = adaptive
        if chunk is not None and chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        self.chunk = chunk
        if pool_rebuilds < 0:
            raise ValueError(f"pool_rebuilds must be >= 0, got {pool_rebuilds}")
        self.pool_rebuilds = pool_rebuilds
        self.report = SweepReport()
        self._pool: Optional[ProcessPoolExecutor] = None
        # pid -> last reported construction totals for that worker.
        self._worker_totals: Dict[int, Dict[str, int]] = {}
        self._cost_model = CostModel()

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _make_pool(self, workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=init_worker,
            initargs=(self.warm,),
        )

    def worker_budget(self) -> int:
        """Worker processes the pool actually gets.  Under adaptive
        scheduling this is capped at the machine's CPU count: the jobs
        are pure CPU work, so extra workers only add context-switch
        and cache-thrash overhead (``jobs`` beyond the core count made
        a measurable sweep *slower*).  ``adaptive=False`` honors the
        requested count verbatim, as the PR-4 runner did."""
        if not self.adaptive:
            return self.jobs
        return min(self.jobs, os.cpu_count() or self.jobs)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = self._make_pool(self.worker_budget())
        return self._pool

    def close(self) -> None:
        """Shut down the persistent worker pool (workers are respawned
        on the next parallel ``map``)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._worker_totals.clear()

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
        except Exception:
            pass

    # ------------------------------------------------------------------
    def run(self, job):
        """Execute (or fetch) a single job."""
        return self.map([job])[0]

    def map(self, jobs: Sequence) -> List:
        """Execute every job, returning results in input order."""
        jobs = list(jobs)
        start = time.perf_counter()
        results: List = [None] * len(jobs)
        done = 0

        # 1. Cache lookups.  A job whose description cannot be hashed
        # (e.g. a lambda metric) is simply uncacheable, not an error.
        pending: List[int] = []
        cacheable: List[bool] = [False] * len(jobs)
        hits = 0
        for i, job in enumerate(jobs):
            hit = False
            if self.cache is not None:
                try:
                    self.cache.key(job)
                    cacheable[i] = True
                    hit, value = self.cache.get(job)
                except TypeError:
                    hit = False
            if hit:
                results[i] = value
                hits += 1
                done += 1
                self._tick(done, len(jobs), job)
            else:
                pending.append(i)

        # 2. Execute the misses.
        if pending:
            if self.jobs > 1 and len(pending) > 1:
                done = self._run_parallel(jobs, pending, results, done,
                                          cacheable)
            else:
                self._run_local(jobs, pending, results, done, cacheable)

        self.report.note(
            len(jobs), hits, len(pending), time.perf_counter() - start
        )
        for i in pending:
            stats = getattr(results[i], "kernel", None)
            if stats is not None:
                self.report.note_kernel(stats)
        if self.cache is not None:
            self.cache.flush_counters()
        return results

    # ------------------------------------------------------------------
    def _run_local(self, jobs, pending, results, done, cacheable) -> int:
        """Execute ``pending`` in this process (serial path)."""
        before = _jobs_module.build_counters()
        with warm_override(self.warm):
            for i in pending:
                results[i] = execute_job(jobs[i])
                self._store(jobs[i], results[i], cacheable[i])
                self._observe_cost(jobs[i], results[i])
                done += 1
                self._tick(done, len(jobs), jobs[i])
        self.report.note_builds(_diff_counters(before,
                                               _jobs_module.build_counters()))
        return done

    def _run_parallel(self, jobs, pending, results, done, cacheable) -> int:
        # Jobs that cannot be pickled run in-process; everything else
        # goes to the pool.
        local: List[int] = []
        remote: List[int] = []
        for i in pending:
            try:
                pickle.dumps(jobs[i])
                remote.append(i)
            except Exception:
                local.append(i)

        if len(remote) < 2:
            local, remote = sorted(local + remote), []

        if remote:
            if self.adaptive:
                # Longest-expected-first: saturated / high-load points
                # start immediately, so the pool never finishes its
                # short jobs first and then waits on one straggler.
                remote.sort(key=lambda i: self._expected_cost(jobs[i]),
                            reverse=True)
            chunk = self._chunk_size(len(remote))
            chunks = [remote[o:o + chunk]
                      for o in range(0, len(remote), chunk)]
            done = self._run_chunks(jobs, chunks, results, done, cacheable)
        if local:
            done = self._run_local(jobs, local, results, done, cacheable)
        return done

    def _run_chunks(self, jobs, chunks, results, done, cacheable) -> int:
        """Fan ``chunks`` over the pool, surviving worker death.

        A killed worker process breaks the whole ``ProcessPoolExecutor``
        — every outstanding future raises ``BrokenProcessPool`` even
        though most chunks were simply queued.  Rather than wedging the
        sweep, the broken pool is replaced and only the chunks whose
        results never arrived are resubmitted (completed chunks keep
        their results; re-running a lost chunk is safe because jobs are
        deterministic).  This is the single-box degenerate case of the
        fabric's lease re-issue.  ``pool_rebuilds`` bounds the retries
        so a job that reliably kills its worker still surfaces as
        ``BrokenProcessPool`` instead of looping forever.
        """
        remaining = [list(group) for group in chunks]
        rebuilds = 0
        while remaining:
            pool = (self._ensure_pool() if self.persistent
                    else self._make_pool(
                        min(self.worker_budget(),
                            sum(len(g) for g in remaining))))
            broken = False
            try:
                try:
                    futures = {
                        pool.submit(execute_chunk,
                                    [jobs[i] for i in group]): group
                        for group in remaining
                    }
                except BrokenProcessPool:
                    futures = {}
                    broken = True
                outstanding = set(futures)
                while outstanding:
                    finished, outstanding = wait(
                        outstanding, return_when=FIRST_COMPLETED
                    )
                    for future in finished:
                        try:
                            values, counters = future.result()
                        except BrokenProcessPool:
                            broken = True
                            continue
                        self._note_worker(counters)
                        group = futures[future]
                        for i, value in zip(group, values):
                            results[i] = value
                            self._store(jobs[i], value, cacheable[i])
                            self._observe_cost(jobs[i], value)
                            done += 1
                            self._tick(done, len(jobs), jobs[i])
                        remaining.remove(group)
            finally:
                if not self.persistent:
                    pool.shutdown(wait=True)
            if not broken:
                break
            # The dead workers' counter totals are gone with their
            # pids; drop the bookkeeping so fresh workers (re)count
            # from zero, then retry the unfinished chunks.
            pool.shutdown(wait=False)
            if self.persistent:
                self._pool = None
            self._worker_totals.clear()
            rebuilds += 1
            if rebuilds > self.pool_rebuilds:
                raise BrokenProcessPool(
                    f"worker pool died {rebuilds} times; giving up on "
                    f"{sum(len(g) for g in remaining)} unfinished job(s)"
                )
        return done

    # ------------------------------------------------------------------
    def _chunk_size(self, n: int) -> int:
        if self.chunk is not None:
            return self.chunk
        if not self.adaptive:
            return 1
        # Aim for several chunks per worker so dynamic scheduling can
        # still balance, but never more than 8 jobs per submission.
        return max(1, min(8, n // (self.worker_budget() * 4)))

    def _expected_cost(self, job) -> float:
        """Best-effort relative cost of ``job`` (see
        :class:`CostModel`)."""
        return self._cost_model.expected(job)

    def _observe_cost(self, job, value) -> None:
        self._cost_model.observe(job, value)

    def _note_worker(self, counters: Dict[str, int]) -> None:
        pid = counters.get("pid", 0)
        previous = self._worker_totals.get(pid)
        if previous is None:
            # First report from this worker: the initializer zeroed its
            # counters, so the totals ARE the delta.
            delta = counters
            self.report.workers += 1
        else:
            delta = _diff_counters(previous, counters)
        self._worker_totals[pid] = counters
        self.report.note_builds(delta)

    def _store(self, job, value, cacheable: bool) -> None:
        if self.cache is not None and cacheable:
            self.cache.put(job, value)

    def _tick(self, done: int, total: int, job) -> None:
        if self.progress is not None:
            self.progress(done, total, job)


def _diff_counters(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    return {
        key: after.get(key, 0) - before.get(key, 0)
        for key in ("sim_builds", "topology_builds", "route_table_builds",
                    "warm_topology_hits")
    }


def stderr_progress(prefix: str = "sweep") -> Callable[[int, int, object], None]:
    """A ready-made progress callback printing one line per point, with
    an ETA extrapolated from completed-point wall times.  Lines are
    flushed immediately so progress stays visible under ``tee`` or any
    other block-buffering consumer."""
    import sys

    start = time.perf_counter()

    def report(done: int, total: int, job) -> None:
        elapsed = time.perf_counter() - start
        label = type(job).__name__
        if 0 < done < total:
            eta = elapsed / done * (total - done)
            tail = f"{elapsed:.1f}s eta {eta:.1f}s"
        else:
            tail = f"{elapsed:.1f}s"
        print(
            f"[{prefix}] {done}/{total} ({label}) {tail}",
            file=sys.stderr,
            flush=True,
        )

    return report
