"""The sweep engine: fan independent jobs over a process pool.

``SweepRunner.map`` preserves input order, consults the result cache
before executing anything, and falls back to in-process execution for
``jobs=1`` (or for jobs that cannot cross a process boundary), so the
serial and parallel paths return bit-identical results.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from .cache import ResultCache
from .jobs import execute_job

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``$REPRO_JOBS``, else 1.

    ``jobs=0`` (or ``REPRO_JOBS=0``) means "one worker per CPU"."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV)
        if env is not None:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(f"{JOBS_ENV} must be an integer, got {env!r}")
        else:
            jobs = 1
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1 (or 0 for all CPUs), got {jobs}")
    return jobs


@dataclass
class SweepReport:
    """Running totals across every ``map`` call of one runner.

    Besides the point/caching counters, the report aggregates the
    :class:`~repro.network.KernelStats` attached to every result a
    sweep actually *executed* (cache hits are excluded — their stats
    describe some earlier run's work, not this one's).
    """

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    elapsed: float = 0.0
    batches: int = 0
    # Aggregated KernelStats over executed points.
    sim_cycles: int = 0
    idle_cycles_skipped: int = 0
    router_phase_calls: int = 0
    events_dispatched: int = 0
    sim_wall_seconds: float = 0.0
    route_calls: int = 0
    flits_allocated: int = 0
    flits_reused: int = 0
    phase_seconds: Optional[dict] = None

    def note(self, total: int, hits: int, executed: int, elapsed: float) -> None:
        self.total += total
        self.cache_hits += hits
        self.executed += executed
        self.elapsed += elapsed
        self.batches += 1

    def note_kernel(self, stats) -> None:
        """Fold one result's :class:`KernelStats` into the totals.

        Tolerates stats records predating a field (older cached
        results) by treating them as zero."""
        self.sim_cycles += stats.cycles
        self.idle_cycles_skipped += stats.idle_cycles_skipped
        self.router_phase_calls += stats.router_phase_calls
        self.events_dispatched += stats.events_dispatched
        self.sim_wall_seconds += stats.wall_seconds
        self.route_calls += getattr(stats, "route_calls", 0)
        self.flits_allocated += getattr(stats, "flits_allocated", 0)
        self.flits_reused += getattr(stats, "flits_reused", 0)
        phases = getattr(stats, "phase_seconds", None)
        if phases:
            from ..profiling import merge_phase_seconds

            if self.phase_seconds is None:
                self.phase_seconds = {}
            merge_phase_seconds(self.phase_seconds, phases)

    def summary(self) -> str:
        text = (
            f"{self.total} points, {self.cache_hits} cache hits, "
            f"{self.executed} executed, {self.elapsed:.1f}s"
        )
        if self.sim_cycles:
            text += (
                f"; {self.sim_cycles} simulated cycles "
                f"({self.idle_cycles_skipped} idle-skipped), "
                f"{self.router_phase_calls} router-phase calls, "
                f"{self.events_dispatched} events"
            )
        return text


class SweepRunner:
    """Executes independent simulation jobs, optionally in parallel
    and optionally through a :class:`ResultCache`.

    Args:
        jobs: worker processes; ``None`` reads ``$REPRO_JOBS``
            (default 1 — fully serial, no subprocesses), ``0`` means
            one per CPU.
        cache: a :class:`ResultCache`, or ``None`` to always execute.
        progress: optional callback ``progress(done, total, job)``
            invoked after every completed point (cache hits included).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[Callable[[int, int, object], None]] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.progress = progress
        self.report = SweepReport()

    # ------------------------------------------------------------------
    def run(self, job):
        """Execute (or fetch) a single job."""
        return self.map([job])[0]

    def map(self, jobs: Sequence) -> List:
        """Execute every job, returning results in input order."""
        jobs = list(jobs)
        start = time.perf_counter()
        results: List = [None] * len(jobs)
        done = 0

        # 1. Cache lookups.  A job whose description cannot be hashed
        # (e.g. a lambda metric) is simply uncacheable, not an error.
        pending: List[int] = []
        cacheable: List[bool] = [False] * len(jobs)
        hits = 0
        for i, job in enumerate(jobs):
            hit = False
            if self.cache is not None:
                try:
                    self.cache.key(job)
                    cacheable[i] = True
                    hit, value = self.cache.get(job)
                except TypeError:
                    hit = False
            if hit:
                results[i] = value
                hits += 1
                done += 1
                self._tick(done, len(jobs), job)
            else:
                pending.append(i)

        # 2. Execute the misses.
        if pending:
            if self.jobs > 1 and len(pending) > 1:
                done = self._run_parallel(jobs, pending, results, done)
            else:
                for i in pending:
                    results[i] = execute_job(jobs[i])
                    self._store(jobs[i], results[i], cacheable[i])
                    done += 1
                    self._tick(done, len(jobs), jobs[i])
            if self.jobs > 1 and len(pending) > 1:
                for i in pending:
                    self._store(jobs[i], results[i], cacheable[i])

        self.report.note(
            len(jobs), hits, len(pending), time.perf_counter() - start
        )
        for i in pending:
            stats = getattr(results[i], "kernel", None)
            if stats is not None:
                self.report.note_kernel(stats)
        return results

    # ------------------------------------------------------------------
    def _run_parallel(self, jobs, pending, results, done) -> int:
        # Jobs that cannot be pickled run in-process; everything else
        # goes to the pool.
        local: List[int] = []
        remote: List[int] = []
        for i in pending:
            try:
                pickle.dumps(jobs[i])
                remote.append(i)
            except Exception:
                local.append(i)

        if len(remote) < 2:
            local, remote = sorted(local + remote), []

        if remote:
            workers = min(self.jobs, len(remote))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(execute_job, jobs[i]): i for i in remote
                }
                outstanding = set(futures)
                while outstanding:
                    finished, outstanding = wait(
                        outstanding, return_when=FIRST_COMPLETED
                    )
                    for future in finished:
                        i = futures[future]
                        results[i] = future.result()
                        done += 1
                        self._tick(done, len(jobs), jobs[i])
        for i in local:
            results[i] = execute_job(jobs[i])
            done += 1
            self._tick(done, len(jobs), jobs[i])
        return done

    def _store(self, job, value, cacheable: bool) -> None:
        if self.cache is not None and cacheable:
            self.cache.put(job, value)

    def _tick(self, done: int, total: int, job) -> None:
        if self.progress is not None:
            self.progress(done, total, job)


def stderr_progress(prefix: str = "sweep") -> Callable[[int, int, object], None]:
    """A ready-made progress callback printing one line per point."""
    import sys

    start = time.perf_counter()

    def report(done: int, total: int, job) -> None:
        elapsed = time.perf_counter() - start
        label = type(job).__name__
        print(
            f"[{prefix}] {done}/{total} ({label}) {elapsed:.1f}s",
            file=sys.stderr,
        )

    return report
