"""Content-addressed on-disk result cache.

A job's cache key is the SHA-256 of a canonical JSON description of
the *entire* job — factory identity, every argument (dataclasses are
expanded field by field, classes and functions are named by module and
qualname), and the measurement parameters — combined with a version
stamp.  Any change to topology, routing algorithm, traffic pattern,
:class:`~repro.network.SimulationConfig` field, load, window length,
or the stamp itself therefore produces a different key.

Bump :data:`CACHE_VERSION` whenever a change to the simulator alters
numerical results; stale entries are then never read again (they are
simply unreferenced files that can be deleted with
``ResultCache.clear()``).
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import os
import pickle
import tempfile
import time
from typing import Iterator, Optional, Tuple

#: Version stamp mixed into every cache key.  Bump on any change that
#: alters simulation results.  v2: results carry per-run
#: ``KernelStats`` (kernel name, phase calls, wall time), so entries
#: cached by v1 binaries lack the field and must not be replayed.
#: v3: ``SimulationConfig`` grew the ``faults`` field and open-loop /
#: batch results carry ``packets_undeliverable``; v2 entries lack both.
#: v4: ``KernelStats`` grew the profiling counters (``route_calls``,
#: ``flits_allocated``, ``flits_reused``, ``phase_seconds``); v3
#: entries would replay without them and silently zero the new sweep
#: aggregates.
#: v5: ``SimSpec`` grew the ``topology`` sub-spec field, which appears
#: in every job description (dataclass fields are expanded), so every
#: key changed; results themselves are byte-identical to v4.
#: v6: the ``kernel="batch"`` backend landed and experiment specs may
#: now carry an explicit ``kernel`` kwarg; bumping keeps any entry
#: cached before the kernel kwarg existed from being replayed for a
#: spec that now means a different backend.
#: v7: the unified workload plane: ``SimulationConfig`` grew the
#: ``workload`` field (expanded into every job description),
#: ``OpenLoopResult`` grew ``per_class``, and workload-driven points
#: use the new ``WorkloadJob``; entries cached by v6 binaries lack the
#: fields and must not be replayed.
CACHE_VERSION = "repro-results-v7"

#: Sidecar file (inside the cache directory) accumulating hit/miss
#: counters across runs.  The name deliberately does not end in
#: ``.pkl`` so entry iteration, ``clear`` and ``prune`` skip it.
COUNTERS_FILENAME = "counters.json"

#: Lock file serializing read-modify-write updates of the counters
#: sidecar across processes (fabric workers, parallel sweeps, CLI).
COUNTERS_LOCK_FILENAME = "counters.lock"

#: A counters lock older than this is considered abandoned (its holder
#: died between acquire and release) and is broken by the next writer.
LOCK_STALE_SECONDS = 30.0

#: Environment variable naming the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro-flatbfly``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-flatbfly")


def describe(obj) -> object:
    """Reduce ``obj`` to a JSON-serializable canonical form.

    Supports the vocabulary jobs are built from: primitives,
    tuples/lists, dicts with string keys, dataclass instances,
    ``functools.partial``, and module-level callables (functions and
    classes, named by ``module:qualname``).  Anything else raises
    ``TypeError`` — an unhashable job must not be silently cached.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips floats exactly; JSON's float formatting does
        # too in Python, but be explicit that 0.1 != 0.1000000001.
        return {"__float__": repr(obj)}
    if isinstance(obj, (list, tuple)):
        return [describe(item) for item in obj]
    if isinstance(obj, dict):
        if not all(isinstance(key, str) for key in obj):
            raise TypeError("cache descriptions require string dict keys")
        return {key: describe(obj[key]) for key in sorted(obj)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": _qualified_name(type(obj)),
            "fields": {
                field.name: describe(getattr(obj, field.name))
                for field in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, functools.partial):
        return {
            "__partial__": describe(obj.func),
            "args": describe(obj.args),
            "kwargs": describe(dict(obj.keywords)),
        }
    if isinstance(obj, type) or callable(obj):
        return {"__callable__": _qualified_name(obj)}
    raise TypeError(
        f"cannot build a stable cache description for {type(obj).__name__}: "
        f"{obj!r}"
    )


def _qualified_name(obj) -> str:
    module = getattr(obj, "__module__", None)
    qualname = getattr(obj, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname:
        raise TypeError(
            f"{obj!r} is not a module-level callable; cache keys need a "
            f"stable import path"
        )
    return f"{module}:{qualname}"


def job_key(job, version: str = CACHE_VERSION) -> str:
    """Stable hex digest identifying ``job`` under ``version``."""
    payload = {"version": version, "job": describe(job)}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Pickle-per-entry cache in a flat directory.

    Entries are written atomically (temp file + rename) so concurrent
    workers and interrupted runs can never leave a torn entry behind.
    """

    def __init__(self, directory: Optional[str] = None,
                 version: str = CACHE_VERSION) -> None:
        self.directory = directory or default_cache_dir()
        self.version = version
        self.hits = 0
        self.misses = 0
        # Portions of hits/misses already merged into the sidecar file
        # by flush_counters(); only the delta is written next time.
        self._flushed_hits = 0
        self._flushed_misses = 0

    def key(self, job) -> str:
        return job_key(job, self.version)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.pkl")

    def get(self, job) -> Tuple[bool, object]:
        """Return ``(hit, value)`` for ``job``."""
        try:
            with open(self._path(self.key(job)), "rb") as handle:
                value = pickle.load(handle)
        except (FileNotFoundError, EOFError, pickle.UnpicklingError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, job, value) -> None:
        self.put_payload(
            self.key(job),
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
            overwrite=True,
        )

    # ------------------------------------------------------------------
    # Payload-level API (multi-writer safe)
    # ------------------------------------------------------------------
    # The fabric moves *serialized* results between hosts: a worker
    # pickles a result once, ships the bytes, and both ends land them
    # under the job's content address.  Writes are temp-file + atomic
    # rename, so concurrent writers can never produce a torn entry;
    # ``overwrite=False`` additionally makes the first completed writer
    # win (duplicate completions of a stolen lease leave exactly the
    # payload that arrived first).

    def has(self, key: str) -> bool:
        """Whether an entry for ``key`` is present on disk."""
        return os.path.exists(self._path(key))

    def put_payload(self, key: str, data: bytes,
                    overwrite: bool = False) -> bool:
        """Store already-pickled ``data`` under ``key``; returns whether
        this call wrote the entry (``False`` when ``overwrite`` is off
        and another writer got there first)."""
        if not overwrite and self.has(key):
            return False
        os.makedirs(self.directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            if not overwrite and self.has(key):
                os.unlink(tmp)
                return False
            os.replace(tmp, self._path(key))
            return True
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def read_payload(self, key: str) -> Optional[bytes]:
        """The raw pickled bytes stored under ``key`` (``None`` when
        absent)."""
        try:
            with open(self._path(key), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def get_by_key(self, key: str) -> Tuple[bool, object]:
        """Like :meth:`get` but addressed by a precomputed key.  Does
        not touch the hit/miss counters — fabric coordinators account
        for hits at job-admission time, not on payload reads."""
        data = self.read_payload(key)
        if data is None:
            return False, None
        try:
            return True, pickle.loads(data)
        except (EOFError, pickle.UnpicklingError):
            return False, None

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def _entries(self) -> Iterator[str]:
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return
        for name in names:
            if name.endswith(".pkl"):
                yield os.path.join(self.directory, name)

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in list(self._entries()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> dict:
        """Summary of the on-disk state: entry count, total bytes,
        modification-time range (Unix timestamps, ``None`` if empty),
        and the persisted hit/miss counters.

        Uses one ``os.scandir`` pass over the directory — directory
        entries carry their ``stat`` results, so this never opens or
        re-stats an entry and stays cheap on large caches."""
        entries = 0
        total_bytes = 0
        oldest = newest = None
        try:
            scan = os.scandir(self.directory)
        except FileNotFoundError:
            scan = None
        if scan is not None:
            with scan:
                for entry in scan:
                    if not entry.name.endswith(".pkl"):
                        continue
                    try:
                        info = entry.stat()
                    except OSError:
                        continue
                    entries += 1
                    total_bytes += info.st_size
                    mtime = info.st_mtime
                    if oldest is None or mtime < oldest:
                        oldest = mtime
                    if newest is None or mtime > newest:
                        newest = mtime
        counters = self.persisted_counters()
        return {
            "directory": self.directory,
            "entries": entries,
            "total_bytes": total_bytes,
            "oldest_mtime": oldest,
            "newest_mtime": newest,
            "hits": counters["hits"],
            "misses": counters["misses"],
        }

    # ------------------------------------------------------------------
    # Persisted hit/miss counters
    # ------------------------------------------------------------------
    def _counters_path(self) -> str:
        return os.path.join(self.directory, COUNTERS_FILENAME)

    def persisted_counters(self) -> dict:
        """The accumulated ``{"hits": int, "misses": int}`` sidecar
        (zeros when absent or unreadable)."""
        try:
            with open(self._counters_path(), "r", encoding="utf-8") as handle:
                raw = json.load(handle)
            return {
                "hits": int(raw.get("hits", 0)),
                "misses": int(raw.get("misses", 0)),
            }
        except (OSError, ValueError):
            return {"hits": 0, "misses": 0}

    def _lock_path(self) -> str:
        return os.path.join(self.directory, COUNTERS_LOCK_FILENAME)

    def _acquire_counters_lock(self, timeout: float = 5.0) -> bool:
        """Take the cross-process counters lock (an ``O_EXCL`` lock
        file).  Returns ``False`` on timeout; locks whose holder
        apparently died (older than :data:`LOCK_STALE_SECONDS`) are
        broken rather than waited out."""
        path = self._lock_path()
        deadline = time.monotonic() + timeout
        while True:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(fd, str(os.getpid()).encode("ascii"))
                os.close(fd)
                return True
            except FileExistsError:
                try:
                    age = time.time() - os.stat(path).st_mtime
                    if age > LOCK_STALE_SECONDS:
                        os.unlink(path)
                        continue
                except OSError:
                    continue  # holder released it; retry immediately
                if time.monotonic() >= deadline:
                    return False
                time.sleep(0.005)

    def _release_counters_lock(self) -> None:
        try:
            os.unlink(self._lock_path())
        except OSError:
            pass

    def flush_counters(self) -> None:
        """Merge this instance's unflushed hit/miss counts into the
        sidecar file.

        The read-modify-rename runs under a cross-process lock file, so
        concurrent flushers (fabric workers, parallel sweeps on one
        cache directory) serialize instead of clobbering each other's
        increments.  If the lock cannot be acquired within the timeout
        the flush is skipped — the delta stays unflushed and rides
        along with the next flush, so counts are delayed, never lost.
        """
        delta_hits = self.hits - self._flushed_hits
        delta_misses = self.misses - self._flushed_misses
        if delta_hits == 0 and delta_misses == 0:
            return
        os.makedirs(self.directory, exist_ok=True)
        if not self._acquire_counters_lock():
            return
        try:
            merged = self.persisted_counters()
            merged["hits"] += delta_hits
            merged["misses"] += delta_misses
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(merged, handle)
                os.replace(tmp, self._counters_path())
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        finally:
            self._release_counters_lock()
        self._flushed_hits = self.hits
        self._flushed_misses = self.misses

    def prune(self, older_than_seconds: Optional[float] = None) -> int:
        """Delete entries older than the cutoff (every entry when no
        cutoff is given); returns the number removed.

        Age is measured by file modification time, which ``put``
        refreshes on rewrite; cache *reads* do not refresh it, so the
        cutoff bounds entry age, not recency of use.  Stale-version
        entries are unreferenced by construction (the key embeds
        ``CACHE_VERSION``), making periodic pruning the intended
        hygiene for reclaiming their disk space.
        """
        cutoff = None
        if older_than_seconds is not None:
            if older_than_seconds < 0:
                raise ValueError(
                    f"older_than_seconds must be >= 0, got {older_than_seconds}"
                )
            cutoff = time.time() - older_than_seconds
        removed = 0
        for path in list(self._entries()):
            try:
                if cutoff is not None and os.stat(path).st_mtime >= cutoff:
                    continue
                os.unlink(path)
                removed += 1
            except FileNotFoundError:
                # Lost the race with a concurrent prune (the entry was
                # deleted between listing and stat/unlink).  The entry
                # is gone, which is exactly what this call wanted, so
                # count it as pruned rather than crashing or silently
                # under-reporting.
                removed += 1
            except OSError:
                pass
        return removed
