"""Whole-load-grid batch execution with per-point caching.

:func:`run_batch_grid` compiles a latency-load curve for a
batch-kernel :class:`~repro.runner.jobs.SimSpec` into **one** lockstep
array program (:class:`~repro.runner.jobs.BatchGridJob`) while keeping
the cache granularity at the per-point
:class:`~repro.runner.jobs.BatchOpenLoopJob` the rest of the stack
(report counters, fabric manifests, ``replicate_jobs``) already
consumes: each load point is probed against its per-point key first,
only the misses enter the grid, and every fresh per-load result is
stored back under its per-point key.  Per-run purity of the batch
backend makes grid results bit-identical to pointwise execution, so
cache entries written either way are interchangeable — and the cache
version stays unchanged.
"""

from __future__ import annotations

from typing import List, Sequence

from .jobs import BatchGridJob, BatchOpenLoopJob, execute_job


def run_batch_grid(
    spec,
    loads: Sequence[float],
    seeds: Sequence[int],
    warmup: int,
    measure: int,
    drain_max: int,
    runner=None,
) -> List:
    """Run the whole ``(load x seed)`` grid for ``spec`` and return one
    :class:`~repro.network.batch.BatchRunResult` per load, in order.

    Cached points are served from ``runner.cache`` under their
    per-point :class:`BatchOpenLoopJob` keys; the remaining loads
    execute as a single :class:`BatchGridJob` (one array program) and
    are written back point-by-point.  With ``runner=None`` the grid
    job executes in-process, uncached.
    """
    loads = [float(load) for load in loads]
    seeds = tuple(int(s) for s in seeds)
    point_jobs = [
        BatchOpenLoopJob(spec, load, seeds, warmup, measure, drain_max)
        for load in loads
    ]
    cache = getattr(runner, "cache", None)
    results: List = [None] * len(loads)
    missing: List[int] = []
    for i, job in enumerate(point_jobs):
        hit = False
        value = None
        if cache is not None:
            try:
                cache.key(job)
                hit, value = cache.get(job)
            except TypeError:
                hit = False
        if hit:
            results[i] = value
        else:
            missing.append(i)
    if missing:
        grid_job = BatchGridJob(
            spec,
            tuple(loads[i] for i in missing),
            seeds,
            warmup,
            measure,
            drain_max,
        )
        if runner is not None:
            fresh = runner.map([grid_job])[0]
        else:
            fresh = execute_job(grid_job)
        for i, value in zip(missing, fresh):
            results[i] = value
            if cache is not None:
                try:
                    cache.put(point_jobs[i], value)
                except TypeError:
                    pass
    return results
