"""Phase-level profiling for the simulation kernels.

The simulator's per-cycle work falls into four phases — channel/credit
delivery, injection, fused routing+switch, and the wire phase.  When
profiling is enabled, the kernel runs a timed twin of its step function
that fences each phase with ``time.perf_counter`` and accumulates the
elapsed time into a :class:`PhaseProfile`; the totals are folded into
the run's :class:`~repro.network.stats.KernelStats` (``phase_seconds``)
so they survive the sweep runner's process boundary and aggregate
across points.

Enabling it:

* per simulator — ``Simulator(..., profile=True)``;
* globally — ``REPRO_PROFILE_PHASES=1`` in the environment, which is
  how the experiments CLI's ``--profile`` flag reaches the simulators
  built inside jobs.

Profiling changes *measurement only*: the timed step performs exactly
the same work in exactly the same order as the untimed one, so results
(and every RNG draw) are bit-identical with profiling on or off —
``tests/test_profiling.py`` pins this.  The fences themselves cost a
few percent of wall time, which is why the untimed step stays the
default.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

#: Environment variable that switches phase profiling on globally.
PROFILE_ENV = "REPRO_PROFILE_PHASES"

#: Kernel phase names, in per-cycle execution order.
PHASES = ("deliver", "inject", "route_switch", "wire")


def profiling_enabled(profile: Optional[bool] = None) -> bool:
    """Whether phase profiling is on: the explicit argument wins, else
    ``$REPRO_PROFILE_PHASES`` (any value but empty/``0``)."""
    if profile is not None:
        return profile
    return os.environ.get(PROFILE_ENV, "") not in ("", "0")


class PhaseProfile:
    """Accumulated wall-clock seconds per kernel phase."""

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {name: 0.0 for name in PHASES}

    def as_dict(self) -> Dict[str, float]:
        """A plain ``{phase: seconds}`` dict (picklable, mergeable)."""
        return dict(self.seconds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v:.3f}s" for k, v in self.seconds.items())
        return f"<PhaseProfile {parts}>"


def merge_phase_seconds(
    into: Dict[str, float], phase_seconds: Optional[Dict[str, float]]
) -> Dict[str, float]:
    """Fold one run's ``phase_seconds`` into a running total."""
    if phase_seconds:
        for name, seconds in phase_seconds.items():
            into[name] = into.get(name, 0.0) + seconds
    return into


def format_phase_report(phase_seconds: Dict[str, float]) -> str:
    """A small human-readable phase-breakdown table."""
    total = sum(phase_seconds.values())
    lines = ["phase breakdown (simulated cycles only):"]
    width = max((len(name) for name in phase_seconds), default=5)
    for name in sorted(phase_seconds, key=phase_seconds.get, reverse=True):
        seconds = phase_seconds[name]
        share = 100.0 * seconds / total if total > 0 else 0.0
        lines.append(f"  {name.ljust(width)}  {seconds:9.3f}s  {share:5.1f}%")
    lines.append(f"  {'total'.ljust(width)}  {total:9.3f}s")
    return "\n".join(lines)
