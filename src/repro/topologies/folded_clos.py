"""Two-level folded Clos (fat tree) used in the simulation comparisons.

The paper's Figure 6 compares the flattened butterfly against a folded
Clos whose *bisection bandwidth is held equal* to the flattened
butterfly's.  A non-blocking folded Clos has twice the bisection of a
butterfly of equal terminal count, so the equal-bisection network
tapers the leaf level: each leaf router serves ``t`` terminals but has
only ``t/2`` uplinks ("the folded Clos uses 1/2 of the bandwidth for
load-balancing to the middle stages - thus, only achieves 50%
throughput", Section 3.3).  A ``taper`` of 1 builds the non-blocking
(full fat tree) variant instead.

Multi-level folded-Clos structure appears only in the cost model
(:mod:`repro.cost.census`), where it is handled in closed form; the
paper's cycle simulations, like ours, use the two-level network.
"""

from __future__ import annotations

from typing import List, Sequence

from .base import Channel, Topology


class FoldedClos(Topology):
    """A two-level folded Clos.

    Args:
        num_terminals: total node count ``N``.
        terminals_per_leaf: terminals ``t`` concentrated at each leaf
            router.
        taper: bandwidth taper at the leaf level.  ``taper=2`` (default)
            gives ``t/2`` uplinks per leaf — the paper's equal-bisection
            configuration; ``taper=1`` gives a non-blocking fat tree.

    Leaf routers are ids ``0 .. num_leaves-1``; spine routers follow.
    Leaf ``i`` has one uplink to every spine, so the up-route choice is
    exactly "pick a middle-stage switch".
    """

    def __init__(self, num_terminals: int, terminals_per_leaf: int, taper: int = 2) -> None:
        if terminals_per_leaf < 2:
            raise ValueError(
                f"terminals_per_leaf must be >= 2, got {terminals_per_leaf}"
            )
        if num_terminals % terminals_per_leaf:
            raise ValueError(
                f"num_terminals {num_terminals} not divisible by "
                f"terminals_per_leaf {terminals_per_leaf}"
            )
        if taper < 1:
            raise ValueError(f"taper must be >= 1, got {taper}")
        if terminals_per_leaf % taper:
            raise ValueError(
                f"terminals_per_leaf {terminals_per_leaf} not divisible by taper {taper}"
            )
        self.terminals_per_leaf = terminals_per_leaf
        self.taper = taper
        self.num_leaves = num_terminals // terminals_per_leaf
        if self.num_leaves < 2:
            raise ValueError("need at least two leaf routers")
        self.num_spines = terminals_per_leaf // taper
        super().__init__(
            num_terminals=num_terminals,
            num_routers=self.num_leaves + self.num_spines,
        )
        self._build_channels()

    def _build_channels(self) -> None:
        for leaf in range(self.num_leaves):
            for s in range(self.num_spines):
                spine = self.num_leaves + s
                self._add_channel(leaf, spine, dim=1, updown=+1)
                self._add_channel(spine, leaf, dim=1, updown=-1)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def is_spine(self, router: int) -> bool:
        """Whether ``router`` is a middle-stage (spine) switch."""
        return router >= self.num_leaves

    def leaf_of_terminal(self, terminal: int) -> int:
        """Leaf router serving ``terminal``."""
        if not 0 <= terminal < self.num_terminals:
            raise ValueError(f"terminal {terminal} out of range")
        return terminal // self.terminals_per_leaf

    def uplinks(self, leaf: int) -> Sequence[Channel]:
        """Up channels of ``leaf``, one per spine."""
        return [c for c in self.out_channels(leaf) if c.updown == +1]

    def downlink(self, spine: int, leaf: int) -> Channel:
        """The down channel from ``spine`` to ``leaf``."""
        return self.channel_between(spine, leaf)

    # ------------------------------------------------------------------
    # Terminals
    # ------------------------------------------------------------------
    def injection_router(self, terminal: int) -> int:
        return self.leaf_of_terminal(terminal)

    def ejection_router(self, terminal: int) -> int:
        return self.leaf_of_terminal(terminal)

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def min_router_hops(self, src_router: int, dst_router: int) -> int:
        if src_router == dst_router:
            return 0
        src_spine, dst_spine = self.is_spine(src_router), self.is_spine(dst_router)
        if src_spine != dst_spine:
            return 1
        return 2

    def diameter(self) -> int:
        return 2

    @property
    def name(self) -> str:
        return (
            f"FoldedClos(leaves={self.num_leaves}x{self.terminals_per_leaf}, "
            f"spines={self.num_spines})"
        )
