"""Baseline topologies the paper compares against (Sections 3.3, 4)."""

from .base import Channel, DirectTopology, Topology
from .butterfly import Butterfly
from .folded_clos import FoldedClos
from .folded_clos_multilevel import (
    FoldedClosMultiLevel,
    FoldedClosMultiLevelAdaptive,
)
from .generalized_hypercube import GeneralizedHypercube
from .hyperx import HyperX
from .hypercube import Hypercube
from .routing import DestinationTag, ECube, FoldedClosAdaptive
from .torus import Torus, TorusDOR
from .validate import TopologyError, verify_topology

__all__ = [
    "Channel",
    "DirectTopology",
    "Topology",
    "Butterfly",
    "FoldedClos",
    "FoldedClosMultiLevel",
    "FoldedClosMultiLevelAdaptive",
    "GeneralizedHypercube",
    "HyperX",
    "Hypercube",
    "DestinationTag",
    "ECube",
    "FoldedClosAdaptive",
    "Torus",
    "TorusDOR",
    "TopologyError",
    "verify_topology",
]
