"""Binary hypercube — one of the paper's cost/performance baselines.

An ``n``-dimensional binary hypercube is the ``(2, 2, ..., 2)``
generalized hypercube: ``N = 2**n`` routers, one terminal each, one
bidirectional link per dimension.  The paper evaluates it with e-cube
(dimension-order) routing and a single virtual channel (Table 1);
dimension order on a hypercube is deadlock-free because each dimension
is a single link, not a ring.
"""

from __future__ import annotations

from typing import List

from .base import Channel
from .generalized_hypercube import GeneralizedHypercube


class Hypercube(GeneralizedHypercube):
    """An ``n``-dimensional binary hypercube (``N = 2**n`` terminals)."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = n
        super().__init__(dims=(2,) * n)

    def ecube_next(self, router: int, dst_router: int) -> Channel:
        """Next channel under e-cube routing: correct the lowest-order
        differing address bit."""
        diff = router ^ dst_router
        if diff == 0:
            raise ValueError("already at the destination router")
        bit = (diff & -diff).bit_length() - 1
        return self.channel_between(router, router ^ (1 << bit))

    def min_router_hops(self, src_router: int, dst_router: int) -> int:
        return bin(src_router ^ dst_router).count("1")

    def diameter(self) -> int:
        return self.n

    @property
    def name(self) -> str:
        return f"{self.n}-cube"
