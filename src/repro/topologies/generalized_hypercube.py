"""Generalized hypercube (Bhuyan & Agrawal) — Section 2.3 of the paper.

An ``(m_1, ..., m_n)`` generalized hypercube (GHC) places one router at
every point of the mixed-radix coordinate space and uses a *complete
connection* in each dimension, exactly like the flattened butterfly —
but with a single terminal per router (no concentration).  The paper's
Figure 3 contrasts the resulting router economics: a flattened
butterfly matches terminal bandwidth to inter-router bandwidth, while
the GHC pairs one terminal channel with up to ``sum(m_i - 1)``
inter-router channels.
"""

from __future__ import annotations

from typing import Sequence

from .hyperx import HyperX


class GeneralizedHypercube(HyperX):
    """An ``(m_1, ..., m_n)`` generalized hypercube."""

    def __init__(self, dims: Sequence[int]) -> None:
        super().__init__(concentration=1, dims=tuple(dims))

    @property
    def name(self) -> str:
        return f"GHC{self.dims}"
