"""Multi-level folded Clos (fat tree) — simulatable form.

The two-level :class:`repro.topologies.folded_clos.FoldedClos` covers
the paper's simulations; this module generalizes to ``L`` levels so
that the larger networks of the cost model (a 3-level Clos at 2K-32K
nodes with radix-64 routers) can be simulated too.

Structure: the folded ``h``-ary ``L``-fly.  Every level has
``h**(L-1)`` routers addressed by an ``(L-1)``-digit radix-``h``
position; level ``j`` (1-based) connects *up* to level ``j+1`` by
varying position digit ``j-1``, so a level-``j`` router's subtree is
the set of leaves agreeing with it on digits ``j-1 .. L-2``.  Leaves
concentrate ``taper * h`` terminals on ``h`` uplinks — ``taper=2``
(default) is the paper's equal-bisection configuration, ``taper=1``
the non-blocking fat tree.

Routing (:class:`FoldedClosMultiLevelAdaptive`) is the adaptive
sequential algorithm of Kim et al. [13]: ascend choosing the
least-occupied uplink until reaching the closest common ancestor
level, then descend deterministically.  The up/down discipline is
acyclic, so one virtual channel suffices.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.routing.base import RoutingAlgorithm
from ..core.routing.min_adaptive import pick_min_cost
from .base import Channel, Topology


class FoldedClosMultiLevel(Topology):
    """An ``L``-level folded Clos built from half-radix ``h`` routers.

    ``N = taper * h**L`` terminals.  Router ids are
    ``(level-1) * h**(L-1) + position`` with levels 1-based.
    """

    def __init__(self, h: int, levels: int, taper: int = 2) -> None:
        if h < 2:
            raise ValueError(f"h must be >= 2, got {h}")
        if levels < 2:
            raise ValueError(f"levels must be >= 2, got {levels}")
        if taper < 1:
            raise ValueError(f"taper must be >= 1, got {taper}")
        self.h = h
        self.levels = levels
        self.taper = taper
        self.terminals_per_leaf = taper * h
        self.routers_per_level = h ** (levels - 1)
        super().__init__(
            num_terminals=self.terminals_per_leaf * self.routers_per_level,
            num_routers=levels * self.routers_per_level,
        )
        self._build_channels()

    def _build_channels(self) -> None:
        h, per = self.h, self.routers_per_level
        for level in range(1, self.levels):
            varied = level - 1  # position digit varied by this boundary
            stride = h**varied
            for pos in range(per):
                lower = (level - 1) * per + pos
                own = (pos // stride) % h
                for m in range(h):
                    upper_pos = pos + (m - own) * stride
                    upper = level * per + upper_pos
                    self._add_channel(lower, upper, dim=level, updown=+1)
                    self._add_channel(upper, lower, dim=level, updown=-1)

    # ------------------------------------------------------------------
    def level_of(self, router: int) -> int:
        """Level (1-based) of ``router``."""
        return router // self.routers_per_level + 1

    def position_of(self, router: int) -> int:
        return router % self.routers_per_level

    def router_at(self, level: int, position: int) -> int:
        if not 1 <= level <= self.levels:
            raise ValueError(f"level {level} out of range")
        if not 0 <= position < self.routers_per_level:
            raise ValueError(f"position {position} out of range")
        return (level - 1) * self.routers_per_level + position

    def leaf_of_terminal(self, terminal: int) -> int:
        if not 0 <= terminal < self.num_terminals:
            raise ValueError(f"terminal {terminal} out of range")
        return terminal // self.terminals_per_leaf

    def injection_router(self, terminal: int) -> int:
        return self.leaf_of_terminal(terminal)

    def ejection_router(self, terminal: int) -> int:
        return self.leaf_of_terminal(terminal)

    # ------------------------------------------------------------------
    def ancestor_level(self, leaf_a: int, leaf_b: int) -> int:
        """Closest common ancestor level of two leaf positions: the
        lowest level whose subtree contains both."""
        if leaf_a == leaf_b:
            return 1
        diff = 0
        for digit in range(self.levels - 1):
            if (leaf_a // self.h**digit) % self.h != (
                leaf_b // self.h**digit
            ) % self.h:
                diff = digit
        return diff + 2

    def uplinks(self, router: int) -> List[Channel]:
        """Up channels of a non-top router."""
        return [c for c in self.out_channels(router) if c.updown == +1]

    def downlink_towards(self, router: int, dst_leaf: int) -> Channel:
        """The down channel from ``router`` towards ``dst_leaf``'s
        subtree."""
        level = self.level_of(router)
        if level < 2:
            raise ValueError(f"router {router} is a leaf")
        varied = level - 2
        stride = self.h**varied
        pos = self.position_of(router)
        want = (dst_leaf // stride) % self.h
        own = (pos // stride) % self.h
        lower_pos = pos + (want - own) * stride
        return self.channel_between(
            router, self.router_at(level - 1, lower_pos)
        )

    def min_router_hops(self, src_router: int, dst_router: int) -> int:
        """Minimal hops between two *leaf* routers (up to the common
        ancestor and back down)."""
        if self.level_of(src_router) != 1 or self.level_of(dst_router) != 1:
            raise ValueError("hop counts are defined between leaf routers")
        if src_router == dst_router:
            return 0
        level = self.ancestor_level(
            self.position_of(src_router), self.position_of(dst_router)
        )
        return 2 * (level - 1)

    def diameter(self) -> int:
        return 2 * (self.levels - 1)

    @property
    def name(self) -> str:
        return (
            f"{self.levels}-level folded Clos (h={self.h}, "
            f"{self.terminals_per_leaf} terminals/leaf)"
        )


class FoldedClosMultiLevelAdaptive(RoutingAlgorithm):
    """Adaptive up / deterministic down on the multi-level folded Clos,
    with a sequential allocator [13]."""

    name = "clos-adaptive-ml"
    num_vcs = 1
    sequential = True

    def attach(self, simulator) -> None:
        super().attach(simulator)
        if not isinstance(self.topology, FoldedClosMultiLevel):
            raise TypeError(f"{self.name} requires a FoldedClosMultiLevel")

    def on_packet_created(self, packet) -> None:
        # Common-ancestor level the packet must climb to; computed at
        # the source leaf on first routing.
        packet.scratch = None

    def route(self, engine, packet):
        topo = self.topology
        current = engine.router_id
        dst_leaf = topo.leaf_of_terminal(packet.dst)
        level = topo.level_of(current)
        if level == 1 and current == dst_leaf:
            return engine.ejection_port(packet.dst), 0
        if packet.scratch is None:
            src_leaf = topo.leaf_of_terminal(packet.src)
            packet.scratch = {
                "ancestor": topo.ancestor_level(
                    topo.position_of(src_leaf), topo.position_of(dst_leaf)
                ),
                "down": False,
            }
        state = packet.scratch
        if not state["down"] and level >= state["ancestor"]:
            # Reached the closest common ancestor: commit to the
            # descent (a descending packet at a lower level must not
            # re-ascend).
            state["down"] = True
        if not state["down"]:
            uplink = pick_min_cost(
                (
                    (engine.channel_occupancy(ch), 0, ch)
                    for ch in topo.uplinks(current)
                ),
                self.rng,
            )
            return engine.port_for_channel(uplink), 0
        return engine.port_for_channel(
            topo.downlink_towards(current, dst_leaf)
        ), 0
