"""Structural validation for topologies.

``verify_topology`` checks the invariants every network handed to the
simulator must satisfy — channel bookkeeping consistency, terminal
attachment, reachability — and, for direct topologies, channel
symmetry.  The test suite runs it over every topology in the library;
users building custom :class:`repro.topologies.base.Topology`
subclasses can run it on theirs.
"""

from __future__ import annotations

from collections import deque
from typing import List

from .base import DirectTopology, Topology
from .butterfly import Butterfly


class TopologyError(AssertionError):
    """A structural invariant was violated."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise TopologyError(message)


def verify_topology(topology: Topology) -> None:
    """Raise :class:`TopologyError` if ``topology`` is malformed.

    Checks:

    * channel indices are dense and endpoints in range, no self-loops;
    * per-router in/out adjacency agrees with the channel list;
    * ``channels_between`` is consistent with the channel list;
    * every terminal has in-range injection and ejection routers, and
      the per-router terminal lists partition the terminals;
    * every ejection router is reachable from every injection router
      (for the butterfly: within each source stage's reach);
    * direct topologies have symmetric channels (every link
      bidirectional).
    """
    _verify_channels(topology)
    _verify_terminals(topology)
    _verify_reachability(topology)
    if isinstance(topology, DirectTopology):
        _verify_symmetry(topology)


def _verify_channels(topology: Topology) -> None:
    seen = set()
    for i, channel in enumerate(topology.channels):
        _check(channel.index == i, f"channel {i} has index {channel.index}")
        _check(
            0 <= channel.src < topology.num_routers,
            f"channel {i} source {channel.src} out of range",
        )
        _check(
            0 <= channel.dst < topology.num_routers,
            f"channel {i} destination {channel.dst} out of range",
        )
        _check(channel.src != channel.dst, f"channel {i} is a self-loop")
        seen.add(i)
    for router in range(topology.num_routers):
        for channel in topology.out_channels(router):
            _check(channel.src == router, f"out-channel list wrong at {router}")
            _check(channel.index in seen, f"unregistered channel at {router}")
        for channel in topology.in_channels(router):
            _check(channel.dst == router, f"in-channel list wrong at {router}")
    # channels_between consistency (spot-check every channel).
    for channel in topology.channels:
        group = topology.channels_between(channel.src, channel.dst)
        _check(
            any(c.index == channel.index for c in group),
            f"channels_between misses channel {channel.index}",
        )


def _verify_terminals(topology: Topology) -> None:
    injection: List[List[int]] = [[] for _ in range(topology.num_routers)]
    ejection: List[List[int]] = [[] for _ in range(topology.num_routers)]
    for terminal in range(topology.num_terminals):
        inj = topology.injection_router(terminal)
        ej = topology.ejection_router(terminal)
        _check(0 <= inj < topology.num_routers, f"bad injection router for {terminal}")
        _check(0 <= ej < topology.num_routers, f"bad ejection router for {terminal}")
        injection[inj].append(terminal)
        ejection[ej].append(terminal)
    for router in range(topology.num_routers):
        _check(
            list(topology.injecting_terminals(router)) == injection[router],
            f"injecting_terminals mismatch at router {router}",
        )
        _check(
            list(topology.ejecting_terminals(router)) == ejection[router],
            f"ejecting_terminals mismatch at router {router}",
        )


def _reachable_from(topology: Topology, start: int) -> set:
    seen = {start}
    frontier = deque([start])
    while frontier:
        router = frontier.popleft()
        for channel in topology.out_channels(router):
            if channel.dst not in seen:
                seen.add(channel.dst)
                frontier.append(channel.dst)
    return seen


def _verify_reachability(topology: Topology) -> None:
    ejection_routers = {
        topology.ejection_router(t) for t in range(topology.num_terminals)
    }
    injection_routers = {
        topology.injection_router(t) for t in range(topology.num_terminals)
    }
    for start in injection_routers:
        reach = _reachable_from(topology, start)
        reach.add(start)
        missing = ejection_routers - reach
        _check(
            not missing,
            f"ejection routers {sorted(missing)[:5]} unreachable from {start}",
        )


def _verify_symmetry(topology: DirectTopology) -> None:
    pairs = {}
    for channel in topology.channels:
        pairs[(channel.src, channel.dst)] = (
            pairs.get((channel.src, channel.dst), 0) + 1
        )
    for (src, dst), count in pairs.items():
        _check(
            pairs.get((dst, src), 0) == count,
            f"asymmetric link {src}->{dst} ({count} vs "
            f"{pairs.get((dst, src), 0)})",
        )
