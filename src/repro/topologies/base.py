"""Topology abstraction shared by the simulator, cost, and power models.

A topology is a set of routers joined by *unidirectional* channels plus
an attachment of terminals (processing nodes) to routers.  Direct
topologies (flattened butterfly, hypercube, generalized hypercube)
attach each terminal to a single router for both injection and ejection;
indirect topologies (conventional butterfly, folded Clos) may inject at
one router and eject at another.

Channels carry structural metadata (``dim``/``stage``/``updown``) that
routing algorithms and the cost model interpret per topology.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Channel:
    """A unidirectional router-to-router channel.

    Attributes:
        index: dense id, unique within the topology.
        src: source router id.
        dst: destination router id.
        dim: topology-specific dimension / column label.  For a k-ary
            n-flat this is the flattened-butterfly dimension (1-based,
            as in the paper).  For multistage networks it is the column
            of inter-rank wiring (1-based).  For the hypercube it is the
            bit position.
        updown: for folded-Clos channels, +1 for an uplink (towards the
            root) and -1 for a downlink; 0 elsewhere.
    """

    index: int
    src: int
    dst: int
    dim: int = 0
    updown: int = 0


class Topology(abc.ABC):
    """Base class for all network topologies.

    Subclasses populate ``channels`` (via :meth:`_add_channel`) and
    implement terminal attachment.  Router ids are dense ints in
    ``range(num_routers)``; terminal ids are dense ints in
    ``range(num_terminals)``.
    """

    def __init__(self, num_terminals: int, num_routers: int) -> None:
        if num_terminals < 1:
            raise ValueError(f"need at least one terminal, got {num_terminals}")
        if num_routers < 1:
            raise ValueError(f"need at least one router, got {num_routers}")
        self.num_terminals = num_terminals
        self.num_routers = num_routers
        self.channels: List[Channel] = []
        self._out: List[List[Channel]] = [[] for _ in range(num_routers)]
        self._in: List[List[Channel]] = [[] for _ in range(num_routers)]
        self._by_pair: Dict[Tuple[int, int], List[Channel]] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _add_channel(self, src: int, dst: int, dim: int = 0, updown: int = 0) -> Channel:
        """Create, register, and return a new channel."""
        if not 0 <= src < self.num_routers:
            raise ValueError(f"source router {src} out of range")
        if not 0 <= dst < self.num_routers:
            raise ValueError(f"destination router {dst} out of range")
        if src == dst:
            raise ValueError(f"self-channel at router {src}")
        channel = Channel(index=len(self.channels), src=src, dst=dst, dim=dim, updown=updown)
        self.channels.append(channel)
        self._out[src].append(channel)
        self._in[dst].append(channel)
        self._by_pair.setdefault((src, dst), []).append(channel)
        return channel

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def out_channels(self, router: int) -> Sequence[Channel]:
        """Channels leaving ``router``."""
        return self._out[router]

    def in_channels(self, router: int) -> Sequence[Channel]:
        """Channels entering ``router``."""
        return self._in[router]

    def channels_between(self, src: int, dst: int) -> Sequence[Channel]:
        """All channels from router ``src`` to router ``dst`` (may be empty)."""
        return self._by_pair.get((src, dst), ())

    def channel_between(self, src: int, dst: int) -> Channel:
        """The unique channel from ``src`` to ``dst``.

        Raises ``KeyError`` if there is none and ``ValueError`` if the
        pair is connected by more than one parallel channel.
        """
        found = self._by_pair.get((src, dst))
        if not found:
            raise KeyError(f"no channel from router {src} to router {dst}")
        if len(found) > 1:
            raise ValueError(f"{len(found)} parallel channels from {src} to {dst}")
        return found[0]

    def radix(self, router: int) -> int:
        """Total ports of ``router``: router channels (in+out counted as
        bidirectional pairs where symmetric) plus terminal ports.

        The default implementation counts output channels plus attached
        ejection terminals, which equals the paper's port count for all
        the symmetric topologies in this library.
        """
        return len(self._out[router]) + len(self.ejecting_terminals(router))

    # ------------------------------------------------------------------
    # Terminal attachment
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def injection_router(self, terminal: int) -> int:
        """Router where packets from ``terminal`` enter the network."""

    @abc.abstractmethod
    def ejection_router(self, terminal: int) -> int:
        """Router from which packets to ``terminal`` leave the network."""

    def injecting_terminals(self, router: int) -> Sequence[int]:
        """Terminals that inject at ``router`` (default: dense scan cache)."""
        return self._terminal_map()[0][router]

    def ejecting_terminals(self, router: int) -> Sequence[int]:
        """Terminals that eject at ``router``."""
        return self._terminal_map()[1][router]

    def _terminal_map(self) -> Tuple[List[List[int]], List[List[int]]]:
        cached = getattr(self, "_terminal_map_cache", None)
        if cached is None:
            inj: List[List[int]] = [[] for _ in range(self.num_routers)]
            ej: List[List[int]] = [[] for _ in range(self.num_routers)]
            for t in range(self.num_terminals):
                inj[self.injection_router(t)].append(t)
                ej[self.ejection_router(t)].append(t)
            cached = (inj, ej)
            self._terminal_map_cache = cached
        return cached

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def min_router_hops(self, src_router: int, dst_router: int) -> int:
        """Minimal number of inter-router channel traversals."""

    def min_terminal_hops(self, src_terminal: int, dst_terminal: int) -> int:
        """Minimal inter-router hops between two terminals."""
        return self.min_router_hops(
            self.injection_router(src_terminal), self.ejection_router(dst_terminal)
        )

    def diameter(self) -> int:
        """Maximum over terminal pairs of the minimal hop count.

        Subclasses with closed forms override this; the default scans
        router pairs, which is fine for test-sized networks.
        """
        best = 0
        for s in range(self.num_routers):
            for d in range(self.num_routers):
                best = max(best, self.min_router_hops(s, d))
        return best

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Human-readable topology name."""
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{self.name} N={self.num_terminals} routers={self.num_routers} "
            f"channels={len(self.channels)}>"
        )


class DirectTopology(Topology):
    """Topology in which each terminal injects and ejects at one router.

    Subclasses must provide ``concentration``-style terminal attachment
    via :meth:`router_of_terminal`.
    """

    @abc.abstractmethod
    def router_of_terminal(self, terminal: int) -> int:
        """The single router that serves ``terminal``."""

    def injection_router(self, terminal: int) -> int:
        return self.router_of_terminal(terminal)

    def ejection_router(self, terminal: int) -> int:
        return self.router_of_terminal(terminal)
