"""k-ary n-cube (torus) — the low-radix baseline of the paper's
introduction.

"Over the past 20 years k-ary n-cubes have been widely used — examples
of such networks include SGI Origin 2000, Cray T3E, and Cray XT3.
However ... low-radix networks, such as k-ary n-cubes, are unable to
take full advantage of this increased router bandwidth."

This module provides the classic torus so the library can quantify
that motivation: radix-(2n+1) routers, one terminal per router,
neighbor-only links (cheap cables, but high hop counts and little use
of pin bandwidth).  Dimension-order routing uses the standard two
virtual channels with a dateline per ring to break the wraparound
dependency cycle.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..core.routing.base import RoutingAlgorithm
from .base import Channel, DirectTopology


class Torus(DirectTopology):
    """A k-ary n-cube: ``dims = (k_1, ..., k_n)`` with wraparound rings
    in each dimension and one terminal per router.

    Channel metadata: ``dim`` is the (1-based) dimension; ``updown``
    carries the ring direction (+1 ascending, -1 descending).
    """

    def __init__(self, dims: Sequence[int]) -> None:
        dims = tuple(dims)
        if not dims:
            raise ValueError("need at least one dimension")
        if any(k < 2 for k in dims):
            raise ValueError(f"every ring must have >= 2 routers, got {dims}")
        self.dims: Tuple[int, ...] = dims
        self.num_dims = len(dims)
        num_routers = math.prod(dims)
        super().__init__(num_terminals=num_routers, num_routers=num_routers)
        self._strides: List[int] = []
        stride = 1
        for extent in dims:
            self._strides.append(stride)
            stride *= extent
        self._build_channels()

    def _build_channels(self) -> None:
        for router in range(self.num_routers):
            for d in range(1, self.num_dims + 1):
                extent = self.dims[d - 1]
                up = self.neighbor(router, d, +1)
                self._add_channel(router, up, dim=d, updown=+1)
                if extent > 2:
                    down = self.neighbor(router, d, -1)
                    self._add_channel(router, down, dim=d, updown=-1)

    # ------------------------------------------------------------------
    def coord(self, router: int) -> Tuple[int, ...]:
        """Coordinate vector of ``router``."""
        return tuple(
            (router // self._strides[d]) % self.dims[d] for d in range(self.num_dims)
        )

    def coord_digit(self, router: int, dim: int) -> int:
        """Position of ``router`` in (1-based) dimension ``dim``."""
        return (router // self._strides[dim - 1]) % self.dims[dim - 1]

    def neighbor(self, router: int, dim: int, direction: int) -> int:
        """Ring neighbor of ``router`` in ``dim`` (+1 or -1)."""
        extent = self.dims[dim - 1]
        stride = self._strides[dim - 1]
        own = (router // stride) % extent
        return router + ((own + direction) % extent - own) * stride

    def router_of_terminal(self, terminal: int) -> int:
        if not 0 <= terminal < self.num_terminals:
            raise ValueError(f"terminal {terminal} out of range")
        return terminal

    # ------------------------------------------------------------------
    def ring_distance(self, dim: int, src_digit: int, dst_digit: int) -> int:
        """Minimal hop count around the dimension-``dim`` ring."""
        extent = self.dims[dim - 1]
        ahead = (dst_digit - src_digit) % extent
        return min(ahead, extent - ahead)

    def ring_direction(self, dim: int, src_digit: int, dst_digit: int) -> int:
        """Shortest direction (+1/-1) around the ring; ties go +1."""
        extent = self.dims[dim - 1]
        ahead = (dst_digit - src_digit) % extent
        return +1 if ahead <= extent - ahead else -1

    def min_router_hops(self, src_router: int, dst_router: int) -> int:
        hops = 0
        for d in range(1, self.num_dims + 1):
            hops += self.ring_distance(
                d, self.coord_digit(src_router, d), self.coord_digit(dst_router, d)
            )
        return hops

    def diameter(self) -> int:
        return sum(k // 2 for k in self.dims)

    @property
    def router_radix(self) -> int:
        """Terminal port plus two ring ports per dimension (one for
        2-rings)."""
        return 1 + sum(2 if k > 2 else 1 for k in self.dims)

    def bisection_channels(self) -> int:
        """Unidirectional channels crossing a cut halving the largest
        ring: 2 ring links (x2 directions) per row."""
        d = max(range(self.num_dims), key=lambda i: self.dims[i])
        rows = self.num_routers // self.dims[d]
        links_cut = 2 if self.dims[d] > 2 else 1
        return 2 * links_cut * rows

    @property
    def name(self) -> str:
        if len(set(self.dims)) == 1:
            return f"{self.dims[0]}-ary {self.num_dims}-cube torus"
        return f"Torus{self.dims}"


def torus_dor_next_channel(topology: "Torus", current: int, target: int):
    """Next dimension-order hop from ``current`` towards ``target`` on a
    torus and the number of inter-router hops remaining (including this
    one): the minimal ring direction (ties go +1, matching
    :meth:`Torus.ring_direction`) in the first differing dimension.

    This is the channel :class:`TorusDOR` picks, with the virtual-channel
    dateline state factored out — the choice of physical channel is a
    pure function of ``(current, target)``, which is what the shared
    route table and the batch backend's dense export need.
    """
    remaining = topology.min_router_hops(current, target)
    for d in range(1, topology.num_dims + 1):
        own = topology.coord_digit(current, d)
        want = topology.coord_digit(target, d)
        if own == want:
            continue
        nxt = topology.neighbor(
            current, d, topology.ring_direction(d, own, want)
        )
        return topology.channels_between(current, nxt)[0], remaining
    raise ValueError(f"router {current} is already the target")


class TorusDOR(RoutingAlgorithm):
    """Dimension-order routing on a torus with two virtual channels.

    Within each ring a packet travels in the minimal direction; it
    starts on VC 1 and switches to VC 0 when it crosses the ring's
    dateline (the wraparound edge between position k-1 and 0), breaking
    the cyclic channel dependency of the ring [Dally & Seitz].
    """

    name = "torus-DOR"
    num_vcs = 2
    sequential = False

    def attach(self, simulator) -> None:
        super().attach(simulator)
        if not isinstance(self.topology, Torus):
            raise TypeError(f"{self.name} requires a Torus")

    def on_packet_created(self, packet) -> None:
        # VC class for the current ring: 1 until the dateline, then 0.
        packet.scratch = {"vc": 1}

    def route(self, engine, packet):
        topo = self.topology
        current = engine.router_id
        if current == packet.dst_router:
            return engine.ejection_port(packet.dst), 0
        for d in range(1, topo.num_dims + 1):
            own = topo.coord_digit(current, d)
            want = topo.coord_digit(packet.dst_router, d)
            if own == want:
                continue
            direction = topo.ring_direction(d, own, want)
            nxt = topo.neighbor(current, d, direction)
            if packet.scratch is None:
                packet.scratch = {"vc": 1}
            crossing_dateline = (
                direction == +1 and own == topo.dims[d - 1] - 1
            ) or (direction == -1 and own == 0)
            vc = packet.scratch["vc"]
            if crossing_dateline:
                packet.scratch["vc"] = 0
                vc = 0
            if topo.coord_digit(nxt, d) == want:
                # Ring finished at the next router: reset for the next
                # dimension's ring.
                packet.scratch["vc"] = 1
            channel = topo.channels_between(current, nxt)[0]
            return engine.port_for_channel(channel), vc
        raise AssertionError("no differing dimension despite remote destination")
