"""Complete-connection-per-dimension direct networks.

This is the structural family shared by the paper's flattened
butterfly and the generalized hypercube of Bhuyan & Agrawal: routers
occupy the points of a mixed-radix coordinate space
``dims = (m_1, ..., m_n')``, each dimension is wired as a complete
graph, and ``concentration`` terminals attach to every router.  (The
same family was later generalized and named *HyperX* by Ahn et al.,
2009 — hence the class name.)

:class:`repro.core.flattened_butterfly.FlattenedButterfly` specializes
this to the k-ary n-flat of the paper (``concentration = k``, all
extents ``k``); :class:`repro.topologies.generalized_hypercube.
GeneralizedHypercube` specializes it to ``concentration = 1``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from .base import Channel, DirectTopology


class HyperX(DirectTopology):
    """A direct network with complete connections in every dimension.

    Args:
        concentration: terminals attached to each router.
        dims: per-dimension router extents; ``dims[d-1]`` is the extent
            of (1-based) dimension ``d``.
        multiplicity: parallel channels between each connected router
            pair, per dimension (default 1 everywhere).
    """

    def __init__(
        self,
        concentration: int,
        dims: Sequence[int],
        multiplicity: Optional[Sequence[int]] = None,
    ) -> None:
        if concentration < 1:
            raise ValueError(f"concentration must be >= 1, got {concentration}")
        dims = tuple(dims)
        if not dims:
            raise ValueError("need at least one dimension")
        if any(m < 2 for m in dims):
            raise ValueError(f"every dimension extent must be >= 2, got {dims}")
        self.concentration = concentration
        self.dims: Tuple[int, ...] = dims
        self.num_dims = len(dims)
        if multiplicity is None:
            multiplicity = (1,) * self.num_dims
        multiplicity = tuple(multiplicity)
        if len(multiplicity) != self.num_dims:
            raise ValueError(
                f"multiplicity must have one entry per dimension "
                f"({self.num_dims}), got {len(multiplicity)}"
            )
        if any(m < 1 for m in multiplicity):
            raise ValueError(f"multiplicity entries must be >= 1, got {multiplicity}")
        self.multiplicity: Tuple[int, ...] = multiplicity

        num_routers = math.prod(dims)
        super().__init__(
            num_terminals=num_routers * concentration, num_routers=num_routers
        )
        # Strides for router id <-> coordinate conversion; dimension d
        # (1-based) has stride prod(dims[:d-1]), matching the k**(d-1)
        # term of the paper's Equation 1.
        self._strides: List[int] = []
        stride = 1
        for extent in dims:
            self._strides.append(stride)
            stride *= extent
        self._build_channels()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_channels(self) -> None:
        """Instantiate the complete per-dimension connections (Eq. 1)."""
        for i in range(self.num_routers):
            for d in range(1, self.num_dims + 1):
                stride = self._strides[d - 1]
                extent = self.dims[d - 1]
                own = (i // stride) % extent
                for m in range(extent):
                    if m == own:
                        continue
                    j = i + (m - own) * stride
                    for _ in range(self.multiplicity[d - 1]):
                        self._add_channel(i, j, dim=d)

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def router_coord(self, router: int) -> Tuple[int, ...]:
        """Coordinate vector of ``router``; entry ``d-1`` is its
        position in dimension ``d``."""
        if not 0 <= router < self.num_routers:
            raise ValueError(f"router {router} out of range")
        return tuple(
            (router // self._strides[d]) % self.dims[d] for d in range(self.num_dims)
        )

    def router_from_coord(self, coord: Sequence[int]) -> int:
        """Inverse of :meth:`router_coord`."""
        if len(coord) != self.num_dims:
            raise ValueError(f"coordinate must have {self.num_dims} entries")
        router = 0
        for d, value in enumerate(coord):
            if not 0 <= value < self.dims[d]:
                raise ValueError(
                    f"coordinate {value} out of range in dimension {d + 1}"
                )
            router += value * self._strides[d]
        return router

    def coord_digit(self, router: int, dim: int) -> int:
        """Position of ``router`` in (1-based) dimension ``dim``."""
        return (router // self._strides[dim - 1]) % self.dims[dim - 1]

    def neighbor(self, router: int, dim: int, value: int) -> int:
        """Router reached by setting ``router``'s dimension-``dim``
        digit to ``value`` (Eq. 1 with ``m = value``)."""
        own = self.coord_digit(router, dim)
        return router + (value - own) * self._strides[dim - 1]

    def channel_to(self, router: int, dim: int, value: int) -> Channel:
        """The (first) channel from ``router`` towards digit ``value``
        of dimension ``dim``."""
        return self.channels_between(router, self.neighbor(router, dim, value))[0]

    # ------------------------------------------------------------------
    # Terminals
    # ------------------------------------------------------------------
    def router_of_terminal(self, terminal: int) -> int:
        if not 0 <= terminal < self.num_terminals:
            raise ValueError(f"terminal {terminal} out of range")
        return terminal // self.concentration

    def terminal_digit(self, terminal: int) -> int:
        """Which of the router's terminal ports serves this terminal
        (the rightmost digit of the paper's node address)."""
        return terminal % self.concentration

    # ------------------------------------------------------------------
    # Distances & derived quantities
    # ------------------------------------------------------------------
    def min_router_hops(self, src_router: int, dst_router: int) -> int:
        hops = 0
        for d in range(self.num_dims):
            stride = self._strides[d]
            extent = self.dims[d]
            if (src_router // stride) % extent != (dst_router // stride) % extent:
                hops += 1
        return hops

    def differing_dims(self, src_router: int, dst_router: int) -> List[int]:
        """(1-based) dimensions in which the two routers differ; one
        channel per listed dimension is a minimal route."""
        dims = []
        for d in range(1, self.num_dims + 1):
            if self.coord_digit(src_router, d) != self.coord_digit(dst_router, d):
                dims.append(d)
        return dims

    def diameter(self) -> int:
        return self.num_dims

    def num_minimal_routes(self, src_router: int, dst_router: int) -> int:
        """i! minimal routes between routers differing in i digits
        (Section 2.2 of the paper)."""
        return math.factorial(self.min_router_hops(src_router, dst_router))

    @property
    def router_radix(self) -> int:
        """Ports per router: terminals plus one per channel."""
        return self.concentration + sum(
            (m - 1) * mult for m, mult in zip(self.dims, self.multiplicity)
        )

    def bisection_channels(self) -> int:
        """Bidirectional channel count across a balanced bisection that
        halves the largest dimension.

        For the standard k-ary n-flat (even k) this equals N/4
        bidirectional links, i.e. the ``B = N/2`` unidirectional
        channels of the paper's capacity argument (footnote 3) once
        both directions are counted.
        """
        d = max(range(self.num_dims), key=lambda i: self.dims[i])
        m = self.dims[d]
        crossing_pairs = (m // 2) * (m - m // 2)
        rows = self.num_routers // m
        return crossing_pairs * rows * self.multiplicity[d]
