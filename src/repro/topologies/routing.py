"""Routing algorithms for the baseline topologies (Table 1).

* Conventional butterfly — destination-based (destination-tag)
  routing, the unique path, one VC.
* Folded Clos — adaptive sequential routing per Kim et al. [13]: the
  up-path picks the least-occupied uplink under a sequential
  allocator, the down-path is deterministic; one VC (the up/down
  discipline is acyclic).
* Hypercube — e-cube (dimension order), one VC.
"""

from __future__ import annotations

from typing import Tuple

from ..core.routing.base import RoutingAlgorithm
from ..core.routing.min_adaptive import pick_min_cost
from ..core.routing.table import maybe_route_table
from .butterfly import Butterfly
from .folded_clos import FoldedClos
from .hypercube import Hypercube


class DestinationTag(RoutingAlgorithm):
    """Destination-based routing on a conventional butterfly."""

    name = "dest-tag"
    num_vcs = 1
    sequential = False

    def attach(self, simulator) -> None:
        super().attach(simulator)
        if not isinstance(self.topology, Butterfly):
            raise TypeError(f"{self.name} requires a Butterfly")
        self._route_table = maybe_route_table(self, self.topology)

    def route(self, engine, packet) -> Tuple[int, int]:
        topo = self.topology
        current = engine.router_id
        if topo.stage_of(current) == topo.n - 1:
            return engine.ejection_port(packet.dst), 0
        channel = topo.destination_tag_next(current, packet.dst)
        return engine.port_for_channel(channel), 0

    def route_event(self, engine, packet) -> Tuple[int, int]:
        """:meth:`route` with the unique destination-tag hop looked up
        in the shared route table (deterministic, so trivially
        bit-identical; valid under faults too — the butterfly has no
        alternative path to mask, undeliverable pairs are dropped at
        creation)."""
        table = self._route_table
        if table is None:
            return self.route(engine, packet)
        topo = self.topology
        current = engine.router_id
        if topo.stage_of(current) == topo.n - 1:
            return engine.ejection_port(packet.dst), 0
        return table.destination_tag_next(current, packet.dst), 0


class FoldedClosAdaptive(RoutingAlgorithm):
    """Adaptive up / deterministic down routing on a two-level folded
    Clos, with a sequential allocator [13]."""

    name = "clos-adaptive"
    num_vcs = 1
    sequential = True

    def attach(self, simulator) -> None:
        super().attach(simulator)
        if not isinstance(self.topology, FoldedClos):
            raise TypeError(f"{self.name} requires a FoldedClos")

    def route(self, engine, packet) -> Tuple[int, int]:
        topo = self.topology
        current = engine.router_id
        dst_leaf = topo.leaf_of_terminal(packet.dst)
        if topo.is_spine(current):
            return engine.port_for_channel(topo.downlink(current, dst_leaf)), 0
        if current == dst_leaf:
            return engine.ejection_port(packet.dst), 0
        uplink = pick_min_cost(
            (
                (engine.channel_occupancy(ch), 0, ch)
                for ch in topo.uplinks(current)
            ),
            self.rng,
        )
        return engine.port_for_channel(uplink), 0


class ECube(RoutingAlgorithm):
    """e-cube (dimension order) routing on a binary hypercube."""

    name = "e-cube"
    num_vcs = 1
    sequential = False

    def attach(self, simulator) -> None:
        super().attach(simulator)
        if not isinstance(self.topology, Hypercube):
            raise TypeError(f"{self.name} requires a Hypercube")

    def route(self, engine, packet) -> Tuple[int, int]:
        current = engine.router_id
        if current == packet.dst_router:
            return engine.ejection_port(packet.dst), 0
        channel = self.topology.ecube_next(current, packet.dst_router)
        return engine.port_for_channel(channel), 0
