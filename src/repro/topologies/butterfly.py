"""Conventional k-ary n-fly butterfly.

``N = k**n`` terminals, ``n`` stages of ``N/k`` radix-2k routers
(k inputs + k outputs), unidirectional channels, a single route between
every source/destination pair (destination-tag routing).  The flattened
butterfly of the paper is obtained by collapsing each row of this
network (see :mod:`repro.core.flattened_butterfly`).

Stage ``s`` (0-based) column ``c = s + 1`` (1-based, as the paper counts
"columns of inter-rank wiring") varies digit ``n - 1 - c`` of a router's
position address, so that fixing one destination digit per stage,
most-significant first, delivers the packet.
"""

from __future__ import annotations

from typing import List, Tuple

from .base import Channel, Topology


class Butterfly(Topology):
    """A k-ary n-fly with terminals on stage 0 (injection) and stage
    ``n-1`` (ejection).

    Router ids are ``stage * (N/k) + position`` where ``position`` is an
    ``(n-1)``-digit radix-k number.
    """

    def __init__(self, k: int, n: int) -> None:
        if k < 2:
            raise ValueError(f"k must be >= 2, got {k}")
        if n < 2:
            raise ValueError(f"n must be >= 2, got {n}")
        self.k = k
        self.n = n
        self.routers_per_stage = k ** (n - 1)
        num_terminals = k**n
        super().__init__(
            num_terminals=num_terminals, num_routers=n * self.routers_per_stage
        )
        self._build_channels()

    def _build_channels(self) -> None:
        k, n, rps = self.k, self.n, self.routers_per_stage
        for stage in range(n - 1):
            column = stage + 1  # 1-based inter-rank column
            varied_digit = n - 1 - column  # position digit this column varies
            stride = k**varied_digit
            for pos in range(rps):
                src = stage * rps + pos
                own = (pos // stride) % k
                for m in range(k):
                    dst_pos = pos + (m - own) * stride
                    self._add_channel(src, (stage + 1) * rps + dst_pos, dim=column)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def stage_of(self, router: int) -> int:
        """Stage (0-based) of ``router``."""
        return router // self.routers_per_stage

    def position_of(self, router: int) -> int:
        """Position of ``router`` within its stage."""
        return router % self.routers_per_stage

    def router_at(self, stage: int, position: int) -> int:
        """Router id at ``(stage, position)``."""
        if not 0 <= stage < self.n:
            raise ValueError(f"stage {stage} out of range")
        if not 0 <= position < self.routers_per_stage:
            raise ValueError(f"position {position} out of range")
        return stage * self.routers_per_stage + position

    # ------------------------------------------------------------------
    # Terminals
    # ------------------------------------------------------------------
    def injection_router(self, terminal: int) -> int:
        if not 0 <= terminal < self.num_terminals:
            raise ValueError(f"terminal {terminal} out of range")
        return self.router_at(0, terminal // self.k)

    def ejection_router(self, terminal: int) -> int:
        if not 0 <= terminal < self.num_terminals:
            raise ValueError(f"terminal {terminal} out of range")
        return self.router_at(self.n - 1, terminal // self.k)

    # ------------------------------------------------------------------
    # Routing support
    # ------------------------------------------------------------------
    def destination_tag_next(self, router: int, dst_terminal: int) -> Channel:
        """The unique next channel on the destination-tag route.

        At stage ``s`` the packet fixes node-address digit ``n - 1 - s``
        of the destination, i.e. position digit ``n - 2 - s``.
        """
        stage = self.stage_of(router)
        if stage >= self.n - 1:
            raise ValueError(f"router {router} is in the final stage")
        pos = self.position_of(router)
        varied_digit = self.n - 2 - stage
        stride = self.k**varied_digit
        # Destination position digit the packet must match.
        dst_pos = (dst_terminal // self.k) % self.routers_per_stage
        want = (dst_pos // stride) % self.k
        own = (pos // stride) % self.k
        next_pos = pos + (want - own) * stride
        return self.channel_between(router, self.router_at(stage + 1, next_pos))

    def min_router_hops(self, src_router: int, dst_router: int) -> int:
        """Hops along the pipeline; only defined for src stage <= dst
        stage (the network is unidirectional)."""
        src_stage, dst_stage = self.stage_of(src_router), self.stage_of(dst_router)
        if dst_stage < src_stage:
            raise ValueError("butterfly channels only run forward through stages")
        return dst_stage - src_stage

    def diameter(self) -> int:
        return self.n - 1

    @property
    def name(self) -> str:
        return f"{self.k}-ary {self.n}-fly"
