"""Packaging-aware network cost model (Section 4)."""

from .cables import INFINIBAND_12X, INFINIBAND_4X, CableCostModel, InfinibandFit
from .census import (
    LinkGroup,
    Locality,
    Medium,
    NetworkCensus,
    RouterGroup,
    butterfly_census,
    flattened_butterfly_census,
    folded_clos_census,
    generalized_hypercube_census,
    hypercube_census,
    torus_census,
)
from .layout import (
    FloorPlan,
    MeasuredLengths,
    heuristic_vs_measured,
    measure_flattened_butterfly,
    measure_folded_clos,
)
from .model import CostBreakdown, CostParameters, price_census
from .packaging import GlobalCableLengths, PackagingModel

__all__ = [
    "INFINIBAND_12X",
    "INFINIBAND_4X",
    "CableCostModel",
    "InfinibandFit",
    "LinkGroup",
    "Locality",
    "Medium",
    "NetworkCensus",
    "RouterGroup",
    "butterfly_census",
    "flattened_butterfly_census",
    "folded_clos_census",
    "generalized_hypercube_census",
    "hypercube_census",
    "torus_census",
    "FloorPlan",
    "MeasuredLengths",
    "heuristic_vs_measured",
    "measure_flattened_butterfly",
    "measure_folded_clos",
    "CostBreakdown",
    "CostParameters",
    "price_census",
    "GlobalCableLengths",
    "PackagingModel",
]
