"""Cable and backplane cost model (Table 2, Figure 7).

Costs are per *differential signal* (one wire pair):

* backplane: $1.95, including the GbX connector at $0.12/mated signal;
* electrical cable: $3.72 overhead (connectors, shielding, assembly)
  plus $0.81 per meter — the paper's fit to Infiniband 12x pricing.
  A 2 m cable therefore costs $5.34/signal, the paper's "cable
  connecting nearby routers" figure;
* repeaters: 6 m is the longest run drivable at the full 6.25 Gb/s
  signalling rate, so longer cables are chained through repeaters that
  retime the signal; each repeater adds approximately the connector
  overhead (the step in Figure 7(b));
* optical: $220/signal — priced for reference, but the paper's
  analysis (and ours) uses repeatered electrical cables because optics
  "still remain relatively expensive".

Figure 7(a)'s two Infiniband fits are also provided: the 12x cable
amortizes shielding/assembly over 24 pairs, reducing overhead by 36%
relative to 4x.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CableCostModel:
    """Per-signal link pricing (Table 2 defaults)."""

    backplane_per_signal: float = 1.95
    cable_overhead: float = 3.72
    cable_per_meter: float = 0.81
    optical_per_signal: float = 220.0
    repeater_spacing_m: float = 6.0
    # The step at each repeater is "approximately the additional
    # connector cost", i.e. another cable-overhead increment.
    repeater_overhead: float = 3.72

    def __post_init__(self) -> None:
        if self.repeater_spacing_m <= 0:
            raise ValueError(
                f"repeater spacing must be positive, got {self.repeater_spacing_m}"
            )

    def repeaters_needed(self, length_m: float) -> int:
        """Repeaters on an electrical run of ``length_m`` meters."""
        if length_m < 0:
            raise ValueError(f"negative cable length {length_m}")
        if length_m <= self.repeater_spacing_m:
            return 0
        return math.ceil(length_m / self.repeater_spacing_m) - 1

    def electrical_cost(self, length_m: float) -> float:
        """Cost per signal of an electrical cable of ``length_m``
        meters, including repeaters beyond 6 m (Figure 7(b))."""
        return (
            self.cable_overhead
            + self.cable_per_meter * length_m
            + self.repeaters_needed(length_m) * self.repeater_overhead
        )

    def backplane_cost(self) -> float:
        """Cost per signal of a backplane trace."""
        return self.backplane_per_signal

    def optical_cost(self) -> float:
        """Cost per signal of an optical cable (not used by default)."""
        return self.optical_per_signal


@dataclass(frozen=True)
class InfinibandFit:
    """A straight-line fit of cable cost vs. length (Figure 7(a))."""

    name: str
    overhead: float
    per_meter: float

    def cost(self, length_m: float) -> float:
        return self.overhead + self.per_meter * length_m


# Figure 7(a): the 12x fit is Table 2's electrical model; the 4x
# (commodity) cable has ~36% higher per-signal overhead and slightly
# lower per-meter cost.
INFINIBAND_12X = InfinibandFit("Infiniband 12x", overhead=3.72, per_meter=0.81)
INFINIBAND_4X = InfinibandFit(
    "Infiniband 4x", overhead=3.72 / (1.0 - 0.36), per_meter=0.76
)
