"""Per-topology link and router censuses (Section 4.2/4.3).

A census enumerates, in closed form, every router and every
unidirectional channel of a packaged network, tagging each link group
with its medium (backplane trace vs. electrical cable), its physical
length, and its packaging locality.  The cost model prices a census
(Table 2 / Figure 7); the power model assigns SerDes classes to it
(Table 5).

Locality rule (shared by all direct topologies, matching the paper's
Figure 8 packaging): a dimension-``d`` connection spans a subsystem of
``span = concentration * m_1 * ... * m_d`` nodes.

* routers within one cabinet connect over the backplane;
* a subsystem of at most two cabinets uses very short (~2 m) cables
  (the paper's dimension-1 case: 256 nodes = one cabinet pair);
* larger subsystems use global cables of average length
  ``edge(span)/3`` plus the 2 m overhead, which for the top dimension
  reproduces the paper's ``L_avg = E/3``.

Validated anchors from the paper (Section 4.3): a 1K-node flattened
butterfly has 31 x 32 = 992 inter-router channels where the
corresponding 2-level folded Clos has 2048 and the conventional
butterfly 1024.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence, Tuple

from ..analysis.scaling import (
    PackagedFlatConfig,
    butterfly_stages,
    folded_clos_levels,
    packaged_config,
)
from .packaging import PackagingModel


class Medium(Enum):
    """Physical realization of a link."""

    BACKPLANE = "backplane"
    CABLE = "cable"


class Locality(Enum):
    """Packaging role of a link — what kind of SerDes can drive it."""

    TERMINAL = "terminal"  # processor <-> router, always local
    LOCAL = "local"  # inter-router, within a cabinet (pair)
    GLOBAL = "global"  # inter-router, across the machine floor


@dataclass(frozen=True)
class LinkGroup:
    """A set of identical unidirectional channels."""

    description: str
    channels: int
    medium: Medium
    locality: Locality
    length_m: float = 0.0

    def __post_init__(self) -> None:
        if self.channels < 0:
            raise ValueError(f"negative channel count in {self.description}")
        if self.length_m < 0:
            raise ValueError(f"negative length in {self.description}")


@dataclass(frozen=True)
class RouterGroup:
    """A set of identical routers.

    ``attachments`` counts unidirectional channel endpoints (a
    bidirectional port contributes two), which is the pin measure used
    to scale silicon cost and switch power.
    """

    description: str
    count: int
    attachments: int


@dataclass(frozen=True)
class NetworkCensus:
    """Everything the cost and power models need to know about one
    packaged network."""

    name: str
    num_terminals: int
    routers: Tuple[RouterGroup, ...]
    links: Tuple[LinkGroup, ...]
    # Direct topologies can dedicate short-reach SerDes to local links
    # (Section 5.3); indirect ones cannot.
    direct: bool

    def total_routers(self) -> int:
        return sum(group.count for group in self.routers)

    def total_channels(self) -> int:
        return sum(group.channels for group in self.links)

    def inter_router_channels(self) -> int:
        return sum(
            group.channels
            for group in self.links
            if group.locality is not Locality.TERMINAL
        )

    def average_cable_length(self, include_local: bool = False) -> float:
        """Mean length over global cables (Figure 10(b)'s L_avg).

        Dimension-1 short cables within a cabinet pair are excluded by
        default, as in the paper's L_avg, which describes the global
        cables; pass ``include_local=True`` to average every cable.
        """
        total = 0.0
        count = 0
        for group in self.links:
            if group.medium is not Medium.CABLE:
                continue
            if group.locality is Locality.TERMINAL:
                continue
            if group.locality is Locality.LOCAL and not include_local:
                continue
            total += group.length_m * group.channels
            count += group.channels
        return total / count if count else 0.0

    def average_link_length(self, backplane_m: float = 0.5) -> float:
        """Mean physical length over *all* inter-router links, counting
        backplane traces at a nominal in-cabinet run of ``backplane_m``
        meters.  This is the all-links average that falls as a
        fixed-size flattened butterfly gains dimensions (Figure 13's
        line plot): more of its links live in small, locally packaged
        dimensions."""
        total = 0.0
        count = 0
        for group in self.links:
            if group.locality is Locality.TERMINAL:
                continue
            length = (
                backplane_m if group.medium is Medium.BACKPLANE else group.length_m
            )
            total += length * group.channels
            count += group.channels
        return total / count if count else 0.0


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _terminal_links(num_terminals: int) -> LinkGroup:
    """Processor-router links: one bidirectional link (two channels)
    per node, over the backplane.  Identical for every topology — the
    paper notes these account for ~40% of cost at small N and are not
    reduced by the flattened butterfly."""
    return LinkGroup(
        description="terminal",
        channels=2 * num_terminals,
        medium=Medium.BACKPLANE,
        locality=Locality.TERMINAL,
    )


def _dimension_links(
    description: str,
    channels: int,
    span_nodes: int,
    group_extent: int,
    node_gap: int,
    packaging: PackagingModel,
    machine_nodes: int,
) -> List[LinkGroup]:
    """Classify the channels of one dimension by packaging locality.

    Args:
        channels: unidirectional channels in the dimension.
        span_nodes: nodes spanned by one connected group.
        group_extent: routers in one connected group (the dimension
            extent).
        node_gap: nodes between consecutive routers of the group (the
            dimension's stride in node index).
        machine_nodes: total nodes of the machine.  Global dimensions
            are laid out across the full floor (Figure 8(c) maps
            dimension 2 across columns and dimension 3 across rows), so
            their cables average ``edge(machine)/3`` regardless of
            subsystem size.
    """
    per_cabinet = max(0, packaging.nodes_per_cabinet // max(node_gap, 1))
    if span_nodes <= packaging.nodes_per_cabinet:
        return [
            LinkGroup(
                description=f"{description} (backplane)",
                channels=channels,
                medium=Medium.BACKPLANE,
                locality=Locality.LOCAL,
            )
        ]
    # Fraction of ordered router pairs that stay inside one cabinet.
    if per_cabinet >= 2 and group_extent >= 2:
        in_cab = min(per_cabinet, group_extent)
        intra_fraction = (in_cab - 1) / (group_extent - 1)
    else:
        intra_fraction = 0.0
    intra = round(channels * intra_fraction)
    inter = channels - intra
    groups: List[LinkGroup] = []
    if intra:
        groups.append(
            LinkGroup(
                description=f"{description} (backplane)",
                channels=intra,
                medium=Medium.BACKPLANE,
                locality=Locality.LOCAL,
            )
        )
    if not inter:
        return groups
    if span_nodes <= 2 * packaging.nodes_per_cabinet:
        # A cabinet pair: very short cables, no vertical-run overhead.
        groups.append(
            LinkGroup(
                description=f"{description} (short cable)",
                channels=inter,
                medium=Medium.CABLE,
                locality=Locality.LOCAL,
                length_m=packaging.short_cable_m,
            )
        )
    else:
        edge = packaging.edge_length(machine_nodes)
        length = packaging.with_overhead(max(edge / 3.0, packaging.short_cable_m))
        groups.append(
            LinkGroup(
                description=f"{description} (global cable)",
                channels=inter,
                medium=Medium.CABLE,
                locality=Locality.GLOBAL,
                length_m=length,
            )
        )
    return groups


# ----------------------------------------------------------------------
# Topology censuses
# ----------------------------------------------------------------------
def flattened_butterfly_census(
    num_terminals: int,
    radix: int = 64,
    packaging: Optional[PackagingModel] = None,
    config: Optional[PackagedFlatConfig] = None,
) -> NetworkCensus:
    """Census of a packaged flattened butterfly.

    The configuration defaults to :func:`repro.analysis.scaling.
    packaged_config` — the paper's concrete designs (32-ary 2-flat at
    1K, 16-ary 4-flat towards 64K).
    """
    packaging = packaging or PackagingModel()
    cfg = config or packaged_config(num_terminals, radix)
    if cfg.num_terminals != num_terminals:
        raise ValueError(
            f"config covers {cfg.num_terminals} terminals, asked for {num_terminals}"
        )
    routers = RouterGroup(
        description="flattened-butterfly router",
        count=cfg.num_routers,
        attachments=2 * cfg.router_radix,
    )
    links: List[LinkGroup] = [_terminal_links(num_terminals)]
    gap = cfg.concentration
    span = cfg.concentration
    for d, (extent, mult) in enumerate(zip(cfg.dims, cfg.multiplicity), start=1):
        span *= extent
        channels = cfg.num_routers * (extent - 1) * mult
        links.extend(
            _dimension_links(
                description=f"dimension {d}",
                channels=channels,
                span_nodes=span,
                group_extent=extent,
                node_gap=gap,
                packaging=packaging,
                machine_nodes=num_terminals,
            )
        )
        gap *= extent
    return NetworkCensus(
        name=f"flattened butterfly (c={cfg.concentration}, dims={cfg.dims})",
        num_terminals=num_terminals,
        routers=(routers,),
        links=tuple(links),
        direct=True,
    )


def butterfly_census(
    num_terminals: int,
    radix: int = 64,
    packaging: Optional[PackagingModel] = None,
) -> NetworkCensus:
    """Census of a conventional butterfly with ``radix``-input /
    ``radix``-output routers (pin-comparable to a radix-``radix``
    bidirectional router; with radix 64 it scales to 4K nodes in two
    stages, as in Section 4.3).

    Column ``j`` of inter-rank wiring inherits the locality of the
    flattened-butterfly dimension it would be flattened into — the
    paper notes the butterfly's ``L_max``/``L_avg`` equal the flattened
    butterfly's because the channels are the same.
    """
    packaging = packaging or PackagingModel()
    stages = butterfly_stages(num_terminals, radix)
    positions = max(1, num_terminals // radix)
    routers = RouterGroup(
        description="butterfly router",
        count=stages * positions,
        attachments=2 * min(radix, num_terminals),
    )
    links: List[LinkGroup] = [_terminal_links(num_terminals)]
    # Column j (1-based) varies position digit stages-1-j; the last
    # column connects consecutive router groups and is the one the
    # flattened butterfly packages locally.  Express each column by the
    # node span of its connected groups, exactly as a flattened
    # dimension.
    for column in range(1, stages):
        varied_digit = stages - 1 - column
        pos_stride = radix**varied_digit
        extent = max(2, min(radix, -(-positions // pos_stride)))
        node_gap = pos_stride * radix
        span = min(num_terminals, node_gap * extent)
        links.extend(
            _dimension_links(
                description=f"column {column}",
                channels=num_terminals,
                span_nodes=span,
                group_extent=extent,
                node_gap=node_gap,
                packaging=packaging,
                machine_nodes=num_terminals,
            )
        )
    return NetworkCensus(
        name=f"{radix}-ary {stages}-fly butterfly",
        num_terminals=num_terminals,
        routers=(routers,),
        links=tuple(links),
        direct=False,
    )


def folded_clos_census(
    num_terminals: int,
    radix: int = 64,
    packaging: Optional[PackagingModel] = None,
) -> NetworkCensus:
    """Census of a non-blocking folded Clos from radix-``radix``
    routers: ``L`` levels with ``2N`` channels per level boundary, all
    routed to central router cabinets (``L_avg = E/4``, Figure 9(a))."""
    packaging = packaging or PackagingModel()
    levels = folded_clos_levels(num_terminals, radix)
    half = radix // 2
    router_groups: List[RouterGroup] = []
    if levels == 1:
        router_groups.append(
            RouterGroup("clos single router", 1, 2 * num_terminals)
        )
    else:
        router_groups.append(
            RouterGroup(
                description="clos leaf/middle router",
                count=(levels - 1) * math.ceil(num_terminals / half),
                attachments=2 * radix,
            )
        )
        router_groups.append(
            RouterGroup(
                description="clos top router",
                count=math.ceil(num_terminals / radix),
                attachments=2 * radix,
            )
        )
    links: List[LinkGroup] = [_terminal_links(num_terminals)]
    if levels > 1:
        channels = 2 * num_terminals * (levels - 1)
        if num_terminals <= packaging.nodes_per_cabinet:
            links.append(
                LinkGroup(
                    description="clos up/down links (backplane)",
                    channels=channels,
                    medium=Medium.BACKPLANE,
                    locality=Locality.LOCAL,
                )
            )
        elif num_terminals <= 2 * packaging.nodes_per_cabinet:
            links.append(
                LinkGroup(
                    description="clos up/down links (short cable)",
                    channels=channels,
                    medium=Medium.CABLE,
                    locality=Locality.LOCAL,
                    length_m=packaging.short_cable_m,
                )
            )
        else:
            lengths = packaging.folded_clos_lengths(num_terminals)
            links.append(
                LinkGroup(
                    description="clos up/down links (global cable)",
                    channels=channels,
                    medium=Medium.CABLE,
                    locality=Locality.GLOBAL,
                    length_m=packaging.with_overhead(
                        max(lengths.l_avg, packaging.short_cable_m)
                    ),
                )
            )
    return NetworkCensus(
        name=f"{levels}-level folded Clos (radix {radix})",
        num_terminals=num_terminals,
        routers=tuple(router_groups),
        links=tuple(links),
        direct=False,
    )


def hypercube_census(
    num_terminals: int,
    packaging: Optional[PackagingModel] = None,
) -> NetworkCensus:
    """Census of a binary hypercube: one router (and terminal) per
    node, one bidirectional link per dimension.  Dimensions within a
    cabinet are backplane traces; the rest are cables with the
    geometric length series of Figure 9(b)."""
    packaging = packaging or PackagingModel()
    if num_terminals & (num_terminals - 1):
        raise ValueError(f"hypercube size must be a power of two, got {num_terminals}")
    n = num_terminals.bit_length() - 1
    routers = RouterGroup(
        description="hypercube router",
        count=num_terminals,
        attachments=2 * (n + 1),
    )
    links: List[LinkGroup] = [_terminal_links(num_terminals)]
    in_cabinet_dims = min(n, max(0, packaging.nodes_per_cabinet.bit_length() - 1))
    if in_cabinet_dims:
        links.append(
            LinkGroup(
                description="hypercube in-cabinet dims",
                channels=num_terminals * in_cabinet_dims,
                medium=Medium.BACKPLANE,
                locality=Locality.LOCAL,
            )
        )
    edge = packaging.edge_length(num_terminals)
    for d in range(in_cabinet_dims, n):
        span = 1 << (d + 1)
        if span <= 2 * packaging.nodes_per_cabinet:
            links.append(
                LinkGroup(
                    description=f"hypercube dim {d} (cabinet pair)",
                    channels=num_terminals,
                    medium=Medium.CABLE,
                    locality=Locality.LOCAL,
                    length_m=packaging.short_cable_m,
                )
            )
            continue
        # Geometric length series of Figure 9(b): the top dimension
        # spans E/2, the next E/4, and so on.
        length = max(edge / 2.0 ** (n - d), packaging.short_cable_m)
        links.append(
            LinkGroup(
                description=f"hypercube dim {d} (global cable)",
                channels=num_terminals,
                medium=Medium.CABLE,
                locality=Locality.GLOBAL,
                length_m=packaging.with_overhead(length),
            )
        )
    return NetworkCensus(
        name=f"{n}-cube",
        num_terminals=num_terminals,
        routers=(routers,),
        links=tuple(links),
        direct=True,
    )


def torus_census(
    dims: Sequence[int],
    packaging: Optional[PackagingModel] = None,
) -> NetworkCensus:
    """Census of a k-ary n-cube torus (the low-radix baseline of the
    paper's introduction).

    A production torus is *folded*, interleaving each ring so that
    every link — including the wraparound — spans at most two cabinet
    pitches: rings whose stride keeps neighbors inside a cabinet are
    backplane traces, everything else is a short (~2 m) cable.  Cheap
    links are the torus's whole cost story; its weakness is hop count
    and unused pin bandwidth, which the performance comparison shows.
    """
    packaging = packaging or PackagingModel()
    dims = tuple(dims)
    if not dims or any(k < 2 for k in dims):
        raise ValueError(f"invalid torus dims {dims}")
    num_routers = math.prod(dims)
    ports = 1 + sum(2 if k > 2 else 1 for k in dims)
    routers = RouterGroup(
        description="torus router",
        count=num_routers,
        attachments=2 * ports,
    )
    links: List[LinkGroup] = [_terminal_links(num_routers)]
    stride = 1
    for d, extent in enumerate(dims, start=1):
        channels = num_routers * (2 if extent > 2 else 1)
        # Folded placement: neighbors sit 2*stride nodes apart.
        if 2 * stride * 2 <= packaging.nodes_per_cabinet:
            links.append(
                LinkGroup(
                    description=f"torus dim {d} (backplane)",
                    channels=channels,
                    medium=Medium.BACKPLANE,
                    locality=Locality.LOCAL,
                )
            )
        else:
            links.append(
                LinkGroup(
                    description=f"torus dim {d} (short cable)",
                    channels=channels,
                    medium=Medium.CABLE,
                    locality=Locality.LOCAL,
                    length_m=packaging.short_cable_m,
                )
            )
        stride *= extent
    return NetworkCensus(
        name=f"Torus{dims}",
        num_terminals=num_routers,
        routers=(routers,),
        links=tuple(links),
        direct=True,
    )


def generalized_hypercube_census(
    dims: Sequence[int],
    packaging: Optional[PackagingModel] = None,
) -> NetworkCensus:
    """Census of an ``(m_1, ..., m_n)`` generalized hypercube: the
    flattened-butterfly structure with concentration 1 (Figure 3's
    comparison)."""
    packaging = packaging or PackagingModel()
    dims = tuple(dims)
    num_routers = math.prod(dims)
    routers = RouterGroup(
        description="GHC router",
        count=num_routers,
        attachments=2 * (1 + sum(m - 1 for m in dims)),
    )
    links: List[LinkGroup] = [_terminal_links(num_routers)]
    gap = 1
    span = 1
    for d, extent in enumerate(dims, start=1):
        span *= extent
        links.extend(
            _dimension_links(
                description=f"GHC dimension {d}",
                channels=num_routers * (extent - 1),
                span_nodes=span,
                group_extent=extent,
                node_gap=gap,
                packaging=packaging,
                machine_nodes=num_routers,
            )
        )
        gap *= extent
    return NetworkCensus(
        name=f"GHC{dims}",
        num_terminals=num_routers,
        routers=(routers,),
        links=tuple(links),
        direct=True,
    )
