"""Explicit cabinet floor-plan model (an ablation of Section 4.2).

The paper estimates cable lengths with closed forms — ``L_avg = E/3``
for the flattened butterfly's global dimensions, ``E/4`` for the folded
Clos, a geometric series for the hypercube — over a square floor of
edge ``E = sqrt(N/D)``.  This module checks those heuristics by
actually *placing* cabinets on a 2-D grid and measuring the Manhattan
length of every inter-router channel:

* :class:`FloorPlan` — cabinets on a near-square grid with aisle
  spacing, matching Table 3's density;
* :func:`measure_flattened_butterfly` — Figure 8(c)'s placement
  (dimension-1 subsystems as cabinet pairs, dimension 2 across
  columns, dimension 3 across rows) with per-channel measurement;
* :func:`measure_folded_clos` — leaf cabinets around central router
  cabinets (Figure 9(a)).

The ablation benchmark compares these measured averages against the
closed forms used by the census.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.scaling import PackagedFlatConfig, packaged_config
from .packaging import PackagingModel


@dataclass(frozen=True)
class FloorPlan:
    """Cabinets placed on a grid of ``columns`` x ``rows`` positions.

    Cabinet pitch is the Table 3 footprint, with the depth doubled for
    aisles (the same assumption behind the density constant).
    """

    num_cabinets: int
    columns: int
    packaging: PackagingModel

    @classmethod
    def square(
        cls, num_nodes: int, packaging: Optional[PackagingModel] = None
    ) -> "FloorPlan":
        """Near-square floor plan for ``num_nodes`` nodes."""
        packaging = packaging or PackagingModel()
        cabinets = packaging.num_cabinets(num_nodes)
        # Choose columns so the floor is as square as possible in
        # meters (cabinet width != depth).
        width, depth = packaging.cabinet_footprint_m
        depth *= 2.0  # aisle spacing
        best = 1
        best_aspect = float("inf")
        for columns in range(1, cabinets + 1):
            rows = math.ceil(cabinets / columns)
            aspect = abs(math.log((columns * width) / (rows * depth)))
            if aspect < best_aspect:
                best_aspect = aspect
                best = columns
        return cls(num_cabinets=cabinets, columns=best, packaging=packaging)

    @property
    def rows(self) -> int:
        return math.ceil(self.num_cabinets / self.columns)

    def position_m(self, cabinet: int) -> Tuple[float, float]:
        """Center of ``cabinet`` in meters."""
        if not 0 <= cabinet < self.num_cabinets:
            raise ValueError(f"cabinet {cabinet} out of range")
        width, depth = self.packaging.cabinet_footprint_m
        depth *= 2.0
        col = cabinet % self.columns
        row = cabinet // self.columns
        return ((col + 0.5) * width, (row + 0.5) * depth)

    def distance_m(self, cabinet_a: int, cabinet_b: int) -> float:
        """Manhattan distance between two cabinet centers."""
        ax, ay = self.position_m(cabinet_a)
        bx, by = self.position_m(cabinet_b)
        return abs(ax - bx) + abs(ay - by)

    def extent_m(self) -> Tuple[float, float]:
        """Floor dimensions in meters."""
        width, depth = self.packaging.cabinet_footprint_m
        return (self.columns * width, self.rows * depth * 2.0)


@dataclass
class MeasuredLengths:
    """Per-class measured cable statistics of one placed network."""

    name: str
    backplane_channels: int
    cable_channels: int
    mean_cable_m: float
    max_cable_m: float

    @property
    def total_channels(self) -> int:
        return self.backplane_channels + self.cable_channels


def _cabinet_of_node(node: int, packaging: PackagingModel) -> int:
    return node // packaging.nodes_per_cabinet


def measure_flattened_butterfly(
    num_nodes: int,
    packaging: Optional[PackagingModel] = None,
    config: Optional[PackagedFlatConfig] = None,
    placement: str = "fig8",
) -> MeasuredLengths:
    """Place a packaged flattened butterfly on the floor and measure
    every inter-router channel.

    Placements:

    * ``"fig8"`` — Figure 8(c): dimension-1 subsystems are cabinet
      groups forming grid cells, dimension 2 runs along grid columns
      and dimension 3 along grid rows, so higher-dimension cables are
      axis-aligned (the layout behind the paper's ``L_avg = E/3``).
    * ``"row-major"`` — naive placement by node index on a near-square
      grid; an ablation showing what the axis-aligned layout buys.
    """
    packaging = packaging or PackagingModel()
    cfg = config or packaged_config(num_nodes)
    if cfg.num_terminals != num_nodes:
        raise ValueError(
            f"config covers {cfg.num_terminals} nodes, asked for {num_nodes}"
        )
    if placement not in ("fig8", "row-major"):
        raise ValueError(f"unknown placement {placement!r}")
    c = cfg.concentration
    if placement == "row-major":
        plan = FloorPlan.square(num_nodes, packaging)

        def position(router: int) -> Tuple[float, float]:
            return plan.position_m(_cabinet_of_node(router * c, packaging))

        def same_cabinet(a: int, b: int) -> bool:
            return _cabinet_of_node(a * c, packaging) == _cabinet_of_node(
                b * c, packaging
            )

    else:
        # Figure 8(c): each (d2, d3) grid cell holds one dimension-1
        # subsystem of m1 routers spread over group_cabs cabinets laid
        # side by side within the cell.
        m1 = cfg.dims[0]
        group_nodes = c * m1
        group_cabs = max(1, math.ceil(group_nodes / packaging.nodes_per_cabinet))
        routers_per_cab = max(1, m1 // group_cabs)
        width, depth = packaging.cabinet_footprint_m
        depth *= 2.0  # aisle spacing

        # Grid cells hold dimension-1 subsystems.  With three
        # dimensions, dimension 2 indexes columns and dimension 3 rows
        # (Figure 8(c)); with two, cells form a near-square grid (the
        # one global dimension then spans both axes — which is why the
        # E/3 heuristic is optimistic for 2-dimensional machines, see
        # the layout ablation benchmark).
        total_cells = max(1, cfg.num_routers // m1)
        if cfg.n_prime >= 3:
            cells_x = cfg.dims[1]
        else:
            cells_x = max(1, math.ceil(math.sqrt(total_cells)))

        def cabinet_coords(router: int) -> Tuple[int, int]:
            d1 = router % m1
            cell = router // m1
            sub = min(d1 // routers_per_cab, group_cabs - 1)
            return ((cell % cells_x) * group_cabs + sub, cell // cells_x)

        def position(router: int) -> Tuple[float, float]:
            col, row = cabinet_coords(router)
            return ((col + 0.5) * width, (row + 0.5) * depth)

        def same_cabinet(a: int, b: int) -> bool:
            return cabinet_coords(a) == cabinet_coords(b)

    backplane = 0
    cable = 0
    total_m = 0.0
    max_m = 0.0
    stride = 1
    for extent, mult in zip(cfg.dims, cfg.multiplicity):
        for router in range(cfg.num_routers):
            own = (router // stride) % extent
            xa, ya = position(router)
            for m in range(extent):
                if m == own:
                    continue
                peer = router + (m - own) * stride
                if same_cabinet(router, peer):
                    backplane += mult
                    continue
                xb, yb = position(peer)
                length = max(
                    abs(xa - xb) + abs(ya - yb), packaging.short_cable_m
                )
                cable += mult
                total_m += length * mult
                max_m = max(max_m, length)
        stride *= extent
    mean = total_m / cable if cable else 0.0
    return MeasuredLengths(
        name=f"flattened butterfly (c={cfg.concentration}, dims={cfg.dims})",
        backplane_channels=backplane,
        cable_channels=cable,
        mean_cable_m=mean,
        max_cable_m=max_m,
    )


def measure_folded_clos(
    num_nodes: int,
    packaging: Optional[PackagingModel] = None,
) -> MeasuredLengths:
    """Place folded-Clos leaf cabinets on the floor with the router
    cabinet(s) at the center (Figure 9(a)) and measure every leaf
    up/down channel pair's cable run."""
    packaging = packaging or PackagingModel()
    plan = FloorPlan.square(num_nodes, packaging)
    # Central point of the floor.
    extent_x, extent_y = plan.extent_m()
    center = (extent_x / 2.0, extent_y / 2.0)
    backplane = 0
    cable = 0
    total_m = 0.0
    max_m = 0.0
    # Every node's leaf router sends 1 up + 1 down channel (per unit of
    # bisection) to the central cabinet.
    for cabinet in range(plan.num_cabinets):
        x, y = plan.position_m(cabinet)
        length = abs(x - center[0]) + abs(y - center[1])
        channels = 2 * min(
            packaging.nodes_per_cabinet,
            num_nodes - cabinet * packaging.nodes_per_cabinet,
        )
        if length < 1e-9:
            backplane += channels
            continue
        length = max(length, packaging.short_cable_m)
        cable += channels
        total_m += length * channels
        max_m = max(max_m, length)
    mean = total_m / cable if cable else 0.0
    return MeasuredLengths(
        name="folded Clos (central router cabinet)",
        backplane_channels=backplane,
        cable_channels=cable,
        mean_cable_m=mean,
        max_cable_m=max_m,
    )


def heuristic_vs_measured(
    num_nodes: int, packaging: Optional[PackagingModel] = None
) -> Dict[str, Tuple[float, float]]:
    """(heuristic, measured) mean global cable length for the
    flattened butterfly (E/3) and folded Clos (E/4) at ``num_nodes``."""
    packaging = packaging or PackagingModel()
    edge = packaging.edge_length(num_nodes)
    fb = measure_flattened_butterfly(num_nodes, packaging)
    clos = measure_folded_clos(num_nodes, packaging)
    return {
        "flattened butterfly": (edge / 3.0, fb.mean_cable_m),
        "folded Clos": (edge / 4.0, clos.mean_cable_m),
    }
