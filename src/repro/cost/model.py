"""The network cost model (Section 4.1, Table 2).

Network cost is the sum of router cost and link cost:

* **Routers** — $300 of amortized development (a ~$6M NRE over 20k
  parts) plus $90 of silicon per full radix-64 router (MPR cost model
  for a 0.13um 17x17mm die).  Following the paper's footnote 10, the
  silicon (pin-limited) component scales with the router's channel
  attachments relative to the radix-64 baseline; the development
  charge is per part.
* **Links** — priced per differential signal by medium and length
  (:class:`repro.cost.cables.CableCostModel`); each unidirectional
  channel carries ``pairs_per_port`` signals (3 in Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .cables import CableCostModel
from .census import Locality, LinkGroup, Medium, NetworkCensus, RouterGroup


@dataclass(frozen=True)
class CostParameters:
    """Table 2 / Table 3 constants."""

    router_silicon: float = 90.0
    router_development_total: float = 6.0e6
    router_parts_amortized: int = 20_000
    base_radix: int = 64
    pairs_per_port: int = 3
    cables: CableCostModel = field(default_factory=CableCostModel)

    @property
    def router_development(self) -> float:
        """Amortized development (NRE) cost per router part (~$300)."""
        return self.router_development_total / self.router_parts_amortized

    @property
    def full_router_cost(self) -> float:
        """Cost of one full radix-64 router (~$390, Table 2)."""
        return self.router_development + self.router_silicon

    def router_cost(self, attachments: int) -> float:
        """Cost of a router with ``attachments`` unidirectional channel
        endpoints (a full radix-64 bidirectional router has 128)."""
        if attachments < 2:
            raise ValueError(f"attachments must be >= 2, got {attachments}")
        pin_scale = attachments / (2 * self.base_radix)
        return self.router_development + self.router_silicon * pin_scale

    def signal_cost(self, medium: Medium, length_m: float) -> float:
        """Cost of one differential signal on the given medium."""
        if medium is Medium.BACKPLANE:
            return self.cables.backplane_cost()
        return self.cables.electrical_cost(length_m)

    def channel_cost(self, medium: Medium, length_m: float) -> float:
        """Cost of one unidirectional channel (``pairs_per_port``
        signals)."""
        return self.pairs_per_port * self.signal_cost(medium, length_m)


@dataclass(frozen=True)
class CostBreakdown:
    """Priced census."""

    name: str
    num_terminals: int
    router_cost: float
    terminal_link_cost: float
    local_link_cost: float
    global_link_cost: float

    @property
    def link_cost(self) -> float:
        return self.terminal_link_cost + self.local_link_cost + self.global_link_cost

    @property
    def total(self) -> float:
        return self.router_cost + self.link_cost

    @property
    def cost_per_node(self) -> float:
        return self.total / self.num_terminals

    @property
    def link_fraction(self) -> float:
        """Link share of total network cost (Figure 10(a)'s y-axis)."""
        return self.link_cost / self.total if self.total else 0.0


def price_census(
    census: NetworkCensus, params: Optional[CostParameters] = None
) -> CostBreakdown:
    """Price a :class:`NetworkCensus` under ``params``."""
    params = params or CostParameters()
    router_cost = sum(
        group.count * params.router_cost(group.attachments)
        for group in census.routers
    )
    by_locality: Dict[Locality, float] = {loc: 0.0 for loc in Locality}
    for group in census.links:
        by_locality[group.locality] += group.channels * params.channel_cost(
            group.medium, group.length_m
        )
    return CostBreakdown(
        name=census.name,
        num_terminals=census.num_terminals,
        router_cost=router_cost,
        terminal_link_cost=by_locality[Locality.TERMINAL],
        local_link_cost=by_locality[Locality.LOCAL],
        global_link_cost=by_locality[Locality.GLOBAL],
    )
