"""Packaging model: cabinets, floor plan, and cable lengths
(Section 4.2, Table 3).

Systems pack 128 nodes per cabinet (as in the Cray BlackWidow) on a
two-dimensional machine-room floor of node density D = 75 nodes/m²
(the cabinet footprint with doubled depth for aisle spacing).  The
edge of the cabinet layout is ``E = sqrt(N / D)``; every real cable
additionally carries 2 m of overhead (1 m of vertical run at each
end).

Per-topology cable lengths (Figures 8 and 9):

* flattened butterfly & conventional butterfly — the longest global
  cable spans one edge, ``L_max ~= E``; global connections average
  ``L_avg ~= E / 3``.  Dimension-1 (or last-column) connections stay
  inside a cabinet pair: backplane or very short (~2 m) cables.
* folded Clos — cables run to a central router cabinet:
  ``L_max ~= E / 2`` and ``L_avg ~= E / 4``.
* hypercube — per-dimension cable lengths form a geometric series
  E/2, E/4, ..., giving ``L_avg ~= (E - 1) / log2(E)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class PackagingModel:
    """Floor-plan constants (Table 3 defaults)."""

    nodes_per_cabinet: int = 128
    cabinet_footprint_m: tuple = (0.57, 1.44)
    density_nodes_per_m2: float = 75.0
    cable_overhead_m: float = 2.0
    short_cable_m: float = 2.0

    def __post_init__(self) -> None:
        if self.nodes_per_cabinet < 1:
            raise ValueError(
                f"nodes_per_cabinet must be >= 1, got {self.nodes_per_cabinet}"
            )
        if self.density_nodes_per_m2 <= 0:
            raise ValueError(
                f"density must be positive, got {self.density_nodes_per_m2}"
            )

    # ------------------------------------------------------------------
    def num_cabinets(self, num_nodes: int) -> int:
        """Cabinets needed for ``num_nodes`` nodes."""
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        return math.ceil(num_nodes / self.nodes_per_cabinet)

    def edge_length(self, num_nodes: int) -> float:
        """Edge E (meters) of the square cabinet layout:
        ``E = sqrt(N / D)``."""
        return math.sqrt(num_nodes / self.density_nodes_per_m2)

    def with_overhead(self, length_m: float) -> float:
        """Add the 2 m vertical-run overhead to a cable length."""
        return length_m + self.cable_overhead_m

    # ------------------------------------------------------------------
    # Per-topology global cable lengths (before overhead)
    # ------------------------------------------------------------------
    def flattened_butterfly_lengths(self, num_nodes: int) -> "GlobalCableLengths":
        """Global (dimension >= 2) cable lengths in a flattened
        butterfly; same for the conventional butterfly, whose channels
        the flattened butterfly inherits."""
        edge = self.edge_length(num_nodes)
        return GlobalCableLengths(l_max=edge, l_avg=edge / 3.0)

    butterfly_lengths = flattened_butterfly_lengths

    def folded_clos_lengths(self, num_nodes: int) -> "GlobalCableLengths":
        """Cables route to a central router cabinet (Figure 9(a))."""
        edge = self.edge_length(num_nodes)
        return GlobalCableLengths(l_max=edge / 2.0, l_avg=edge / 4.0)

    def hypercube_dim_lengths(self, num_nodes: int) -> List[float]:
        """Cable length of each global hypercube dimension (those that
        leave a cabinet), longest first: E/2, E/4, ... (Figure 9(b)).

        Lengths are clamped below at the short-cable length; dimensions
        inside a cabinet are not included (they are backplane traces).
        """
        if num_nodes & (num_nodes - 1):
            raise ValueError(f"hypercube size must be a power of two, got {num_nodes}")
        edge = self.edge_length(num_nodes)
        total_dims = num_nodes.bit_length() - 1
        in_cabinet_dims = min(
            total_dims, max(0, self.nodes_per_cabinet.bit_length() - 1)
        )
        lengths = []
        for i in range(total_dims - in_cabinet_dims):
            lengths.append(max(edge / 2.0 ** (i + 1), self.short_cable_m))
        return lengths

    def hypercube_avg_length(self, num_nodes: int) -> float:
        """Mean global cable length; approximately
        ``(E - 1) / log2(E)`` per the paper."""
        lengths = self.hypercube_dim_lengths(num_nodes)
        if not lengths:
            return 0.0
        return sum(lengths) / len(lengths)


@dataclass(frozen=True)
class GlobalCableLengths:
    """Maximum and average global cable length (before the 2 m
    overhead)."""

    l_max: float
    l_avg: float
