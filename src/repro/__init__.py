"""repro — a reproduction of "Flattened Butterfly: A Cost-Efficient
Topology for High-Radix Networks" (Kim, Dally, Abts; ISCA 2007).

The package provides:

* :mod:`repro.core` — the flattened butterfly topology and its five
  routing algorithms (MIN AD, VAL, UGAL, UGAL-S, CLOS AD),
* :mod:`repro.topologies` — the baseline topologies (conventional
  butterfly, folded Clos, hypercube, generalized hypercube) with their
  routing,
* :mod:`repro.network` — a cycle-accurate flit-level simulator,
* :mod:`repro.traffic` — synthetic traffic patterns,
* :mod:`repro.cost` / :mod:`repro.power` — the packaging-aware cost and
  power models of Sections 4 and 5.3,
* :mod:`repro.analysis` — closed-form scalability and capacity math,
* :mod:`repro.faults` — deterministic fault injection and fault-aware
  routing for degraded-topology experiments,
* :mod:`repro.experiments` — one harness per paper figure/table.

Quickstart::

    from repro import FlattenedButterfly, ClosAD, Simulator, UniformRandom

    sim = Simulator(FlattenedButterfly(8, 2), ClosAD(), UniformRandom())
    result = sim.run_open_loop(load=0.4, warmup=500, measure=500)
    print(result.latency.mean, result.accepted_throughput)
"""

from .core import (
    ClosAD,
    DimensionOrder,
    FlattenedButterfly,
    MinimalAdaptive,
    RoutingAlgorithm,
    UGAL,
    UGALSequential,
    Valiant,
    flattened_butterfly_for_size,
)
from .network import (
    BatchResult,
    OpenLoopResult,
    SimulationConfig,
    Simulator,
)
from .faults import FaultedTopologyView, FaultModel, FaultSet, TransientFault
from .runner import ResultCache, SimSpec, SweepRunner
from .topologies import (
    Butterfly,
    DestinationTag,
    ECube,
    FoldedClos,
    FoldedClosAdaptive,
    GeneralizedHypercube,
    Hypercube,
    Topology,
)
from .traffic import GroupShift, TrafficPattern, UniformRandom, adversarial

__version__ = "1.0.0"

__all__ = [
    "ClosAD",
    "DimensionOrder",
    "FlattenedButterfly",
    "MinimalAdaptive",
    "RoutingAlgorithm",
    "UGAL",
    "UGALSequential",
    "Valiant",
    "flattened_butterfly_for_size",
    "BatchResult",
    "OpenLoopResult",
    "SimulationConfig",
    "Simulator",
    "FaultModel",
    "FaultSet",
    "FaultedTopologyView",
    "TransientFault",
    "ResultCache",
    "SimSpec",
    "SweepRunner",
    "Butterfly",
    "DestinationTag",
    "ECube",
    "FoldedClos",
    "FoldedClosAdaptive",
    "GeneralizedHypercube",
    "Hypercube",
    "Topology",
    "GroupShift",
    "TrafficPattern",
    "UniformRandom",
    "adversarial",
    "__version__",
]
