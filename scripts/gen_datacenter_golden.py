#!/usr/bin/env python
"""Regenerate the ext_datacenter golden CSV (tests/golden/).

Run after an intentional, numerically-understood change to the
simulator or the datacenter workloads — and bump
``repro.runner.cache.CACHE_VERSION`` at the same time::

    PYTHONPATH=src python scripts/gen_datacenter_golden.py
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.experiments.ext_datacenter import golden_point  # noqa: E402

GOLDEN = os.path.join(
    os.path.dirname(__file__), os.pardir, "tests", "golden",
    "ext_datacenter_golden-point.csv",
)


def main() -> int:
    result = golden_point("ci")
    with open(GOLDEN, "w") as handle:
        handle.write(result.tables[0].to_csv())
    print(f"wrote {os.path.normpath(GOLDEN)}")
    print(result.to_text())
    return 0


if __name__ == "__main__":
    sys.exit(main())
