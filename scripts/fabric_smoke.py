#!/usr/bin/env python
"""CI smoke test of the distributed sweep fabric.

Drives the real CLI surface end to end on localhost:

1. start two persistent ``repro fabric worker`` processes;
2. run CI-scale fig04 over ``--fabric`` with a named campaign, and
   SIGKILL the coordinator process once a few results are cached —
   the abrupt-death checkpoint case;
3. rerun the identical command: it reloads the campaign manifest,
   serves everything already cached as hits, and finishes only the
   missing jobs (the persisted cache miss counter proves it);
4. rerun once more: a pure cache replay, zero new misses;
5. byte-compare the CSVs of the completed runs against the committed
   golden tables — fabric execution, worker death, and resume must be
   byte-invisible in the results.

Run from the repository root::

    python scripts/fabric_smoke.py [--port N] [--keep]
"""

from __future__ import annotations

import argparse
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.runner import ResultCache  # noqa: E402

GOLDEN_DIR = os.path.join(ROOT, "tests", "golden")
GOLDEN_PREFIX = "fig04_"


def log(text: str) -> None:
    print(f"[fabric-smoke] {text}", flush=True)


def experiment_cmd(port: int, cache_dir: str, csv_dir: str) -> list:
    return [
        sys.executable, "-m", "repro.experiments", "fig04",
        "--fabric", f"127.0.0.1:{port}",
        "--campaign", "fabric-smoke",
        "--cache-dir", cache_dir,
        "--csv", csv_dir,
        "--progress",
    ]


def cache_entries(cache_dir: str) -> int:
    return ResultCache(cache_dir).stats()["entries"]


def persisted_misses(cache_dir: str) -> int:
    return ResultCache(cache_dir).persisted_counters()["misses"]


def compare_with_golden(csv_dir: str) -> int:
    """Byte-compare every golden fig04 table against the run's CSV."""
    compared = 0
    for name in sorted(os.listdir(GOLDEN_DIR)):
        if not name.startswith(GOLDEN_PREFIX):
            continue
        golden_path = os.path.join(GOLDEN_DIR, name)
        got_path = os.path.join(csv_dir, name)
        if not os.path.exists(got_path):
            raise SystemExit(f"missing CSV {name} in {csv_dir}")
        with open(golden_path, "rb") as handle:
            golden = handle.read()
        with open(got_path, "rb") as handle:
            got = handle.read()
        if golden != got:
            raise SystemExit(f"CSV {name} differs from the golden table")
        compared += 1
    if not compared:
        raise SystemExit(f"no golden {GOLDEN_PREFIX}*.csv found")
    return compared


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--port", type=int, default=17421)
    parser.add_argument(
        "--kill-after-entries", type=int, default=2,
        help="SIGKILL the first run once this many results are cached",
    )
    parser.add_argument(
        "--keep", action="store_true",
        help="keep the scratch directory for inspection",
    )
    args = parser.parse_args()

    scratch = tempfile.mkdtemp(prefix="fabric-smoke-")
    cache_dir = os.path.join(scratch, "cache")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(ROOT, "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)

    workers = [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "fabric", "worker",
             "--connect", f"127.0.0.1:{args.port}",
             "--persist", "--retry-for", "120",
             "--name", f"smoke-{index}"],
            cwd=ROOT, env=env,
        )
        for index in range(2)
    ]
    log(f"started {len(workers)} persistent workers on port {args.port}")

    status = 1
    try:
        # -- run 1: killed mid-campaign --------------------------------
        csv1 = os.path.join(scratch, "csv-killed")
        first = subprocess.Popen(
            experiment_cmd(args.port, cache_dir, csv1), cwd=ROOT, env=env
        )
        deadline = time.monotonic() + 300
        while (cache_entries(cache_dir) < args.kill_after_entries
               and first.poll() is None):
            if time.monotonic() > deadline:
                raise SystemExit("first run produced no results in time")
            time.sleep(0.05)
        if first.poll() is None:
            first.send_signal(signal.SIGKILL)
            first.wait(timeout=60)
            log(
                f"killed coordinator (pid {first.pid}) with "
                f"{cache_entries(cache_dir)} results cached"
            )
        else:
            # Tiny CI machines can finish before the kill threshold
            # trips; the resume below then degenerates to a full cache
            # replay, which is still a valid (weaker) check.
            log("first run finished before the kill threshold; "
                "continuing with a replay-only resume check")
        entries_at_kill = cache_entries(cache_dir)
        misses_at_kill = persisted_misses(cache_dir)
        if entries_at_kill == 0:
            raise SystemExit("nothing was cached before the kill")

        # -- run 2: same command resumes the campaign ------------------
        csv2 = os.path.join(scratch, "csv-resumed")
        subprocess.run(
            experiment_cmd(args.port, cache_dir, csv2),
            cwd=ROOT, env=env, check=True, timeout=1200,
        )
        total = cache_entries(cache_dir)
        executed = persisted_misses(cache_dir) - misses_at_kill
        log(
            f"resume executed {executed} jobs "
            f"({entries_at_kill} of {total} were already cached)"
        )
        if executed > total - entries_at_kill:
            raise SystemExit(
                f"resume re-executed cached jobs: {executed} misses for "
                f"{total - entries_at_kill} missing results"
            )
        compared = compare_with_golden(csv2)
        log(f"resumed run matches {compared} golden CSVs byte-for-byte")

        # -- run 3: pure replay, zero new misses -----------------------
        csv3 = os.path.join(scratch, "csv-replay")
        misses_before = persisted_misses(cache_dir)
        subprocess.run(
            experiment_cmd(args.port, cache_dir, csv3),
            cwd=ROOT, env=env, check=True, timeout=600,
        )
        replay_misses = persisted_misses(cache_dir) - misses_before
        if replay_misses:
            raise SystemExit(
                f"replay run missed the cache {replay_misses} times"
            )
        compare_with_golden(csv3)
        log("replay run executed nothing and matches the golden CSVs")

        status_out = subprocess.run(
            [sys.executable, "-m", "repro", "fabric", "list",
             "--cache-dir", cache_dir],
            cwd=ROOT, env=env, check=True, capture_output=True, text=True,
            timeout=120,
        ).stdout
        log(f"fabric list:\n{status_out.rstrip()}")
        status = 0
        log("OK")
    finally:
        for worker in workers:
            if worker.poll() is None:
                worker.terminate()
        for worker in workers:
            try:
                worker.wait(timeout=30)
            except subprocess.TimeoutExpired:
                worker.kill()
        if args.keep:
            log(f"scratch kept at {scratch}")
        else:
            shutil.rmtree(scratch, ignore_errors=True)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
