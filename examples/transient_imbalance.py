"""Watching Figure 5's transient load imbalance happen.

Traces the queue of the *minimal* channel (R0 -> R1 under the
worst-case pattern) cycle by cycle while a small batch drains, for
each routing algorithm.  With the greedy allocator (UGAL), every input
of a routing cycle sees the same short queue and piles onto it; the
sequential allocator (UGAL-S) spreads within the cycle; CLOS AD also
spreads across intermediate routers.  The printed sparklines are the
mechanism behind the paper's Figure 5.

Run with::

    python examples/transient_imbalance.py
"""

from repro import (
    ClosAD,
    FlattenedButterfly,
    SimulationConfig,
    Simulator,
    UGAL,
    UGALSequential,
    Valiant,
)
from repro.network import QueueTrace
from repro.traffic import adversarial

K = 8
BATCH = 4
BARS = " .:-=+*#%@"


def sparkline(values, peak):
    scale = max(peak, 1)
    return "".join(BARS[min(len(BARS) - 1, v * (len(BARS) - 1) // scale)] for v in values)


def main() -> None:
    fb = FlattenedButterfly(K, 2)
    hot = fb.channel_to(0, 1, 1)       # the minimal channel R0 -> R1
    cold = fb.channel_to(0, 1, 5)      # one non-minimal alternative

    print(f"Worst-case batch of {BATCH} packets/node on an {K}-ary 2-flat.")
    print("Occupancy of the minimal channel (top) and one non-minimal")
    print("channel (bottom), one character per cycle:")
    print()
    global_peak = 0
    runs = []
    for cls in (UGAL, UGALSequential, ClosAD, Valiant):
        sim = Simulator(
            FlattenedButterfly(K, 2), cls(), adversarial(),
            SimulationConfig(seed=1),
        )
        trace = QueueTrace([hot, cold])
        sim.attach_tracer(trace)
        sim.run_batch(BATCH)
        runs.append((cls.name, trace))
        global_peak = max(global_peak, trace.peak(hot))

    for name, trace in runs:
        hot_series = trace.series[hot.index]
        cold_series = trace.series[cold.index]
        print(f"{name:<8} peak={trace.peak(hot):>3}  |{sparkline(hot_series, global_peak)}|")
        print(f"{'':<8} peak={trace.peak(cold):>3}  |{sparkline(cold_series, global_peak)}|")
        print()

    print("UGAL's greedy allocator spikes the minimal queue hardest; the")
    print("sequential allocator flattens the spike, and CLOS AD keeps both")
    print("queues low by spreading across every intermediate adaptively.")


if __name__ == "__main__":
    main()
