"""Adversarial traffic: why the flattened butterfly needs non-minimal
global adaptive routing.

Reproduces the paper's worst-case scenario (Section 2.2/3.2): every
node attached to router R_i sends to a random node attached to router
R_{i+1}.  Under minimal routing all of that traffic fights over the
single channel (R_i, R_{i+1}) and throughput collapses to 1/k; CLOS AD
misroutes a fraction of the traffic through intermediate routers and
restores 50% throughput — matching a folded Clos at roughly half the
cost.

Run with::

    python examples/adversarial_traffic.py
"""

from repro import (
    ClosAD,
    DimensionOrder,
    FlattenedButterfly,
    MinimalAdaptive,
    SimulationConfig,
    Simulator,
    UGAL,
    UGALSequential,
    Valiant,
)
from repro.traffic import adversarial

K = 8  # 8-ary 2-flat: N = 64, 8 routers of radix 15


def saturation(algorithm) -> float:
    simulator = Simulator(
        FlattenedButterfly(K, 2),
        algorithm,
        adversarial(),
        SimulationConfig(seed=7),
    )
    return simulator.measure_saturation_throughput(warmup=1000, measure=1000)


def batch_response(algorithm, batch: int) -> float:
    simulator = Simulator(
        FlattenedButterfly(K, 2),
        algorithm,
        adversarial(),
        SimulationConfig(seed=7),
    )
    return simulator.run_batch(batch).normalized_latency


def main() -> None:
    print(f"Worst-case traffic on an {K}-ary 2-flat (N={K * K})")
    print("=" * 56)
    print()
    print("Saturation throughput (fraction of injection bandwidth):")
    algorithms = [
        ("MIN (dimension order)", DimensionOrder()),
        ("MIN AD", MinimalAdaptive()),
        ("VAL", Valiant()),
        ("UGAL", UGAL()),
        ("UGAL-S", UGALSequential()),
        ("CLOS AD", ClosAD()),
    ]
    for name, algorithm in algorithms:
        thr = saturation(algorithm)
        bar = "#" * round(thr * 40)
        print(f"  {name:<22} {thr:5.3f}  {bar}")
    print()
    print(f"Minimal routing is pinned at 1/k = {1 / K:.3f}; every")
    print("non-minimal algorithm load-balances to ~0.5 (the maximum for")
    print("this pattern, which must cross the channel bisection twice).")
    print()

    print("Transient load imbalance (Figure 5): time to deliver a batch,")
    print("normalized to batch size — smaller is better:")
    print(f"  {'batch':>6} {'UGAL':>7} {'UGAL-S':>7} {'CLOS AD':>8}")
    for batch in (1, 4, 16, 64):
        row = [batch_response(cls(), batch) for cls in (UGAL, UGALSequential, ClosAD)]
        print(f"  {batch:>6} {row[0]:>7.2f} {row[1]:>7.2f} {row[2]:>8.2f}")
    print()
    print("UGAL's greedy allocator lets every input pile onto the same")
    print("short queue before the state updates; the sequential allocator")
    print("(UGAL-S) removes that, and CLOS AD also removes the imbalance")
    print("across intermediate routers by picking them adaptively.")


if __name__ == "__main__":
    main()
