"""Quickstart: build a flattened butterfly, route traffic, measure.

Builds the 8-ary 2-flat (a scaled-down version of the paper's 32-ary
2-flat), inspects its structure, and runs the CLOS AD routing algorithm
under uniform-random traffic across a range of offered loads.

Run with::

    python examples/quickstart.py
"""

from repro import ClosAD, FlattenedButterfly, SimulationConfig, Simulator, UniformRandom


def main() -> None:
    # --- Topology ------------------------------------------------------
    # A k-ary n-flat: k terminals per router, n-1 dimensions of
    # complete-graph connections (Section 2 of the paper).
    topology = FlattenedButterfly(8, 2)
    print(f"topology:        {topology.name}")
    print(f"terminals:       {topology.num_terminals}")
    print(f"routers:         {topology.num_routers}")
    print(f"router radix k': {topology.router_radix}")
    print(f"diameter:        {topology.diameter()} inter-router hop(s)")
    print(f"channels:        {len(topology.channels)} unidirectional")
    print()

    # Path diversity (Section 2.2): i! minimal routes when i digits
    # differ.
    a, b = 0, topology.num_routers - 1
    print(
        f"minimal routes between router {a} and router {b}: "
        f"{topology.num_minimal_routes(a, b)}"
    )
    print()

    # --- Simulation ----------------------------------------------------
    # CLOS AD: the paper's best routing algorithm — adaptive choice of
    # the middle stage with a sequential allocator (Section 3.1).
    print(f"{'load':>6} {'avg latency':>12} {'throughput':>11} {'avg hops':>9}")
    for load in (0.1, 0.3, 0.5, 0.7, 0.9):
        simulator = Simulator(
            FlattenedButterfly(8, 2),
            ClosAD(),
            UniformRandom(),
            SimulationConfig(seed=42),
        )
        result = simulator.run_open_loop(
            load, warmup=500, measure=500, drain_max=20_000
        )
        print(
            f"{load:>6.1f} {result.latency.mean:>12.2f} "
            f"{result.accepted_throughput:>11.3f} {result.mean_hops:>9.2f}"
        )
    print()
    print("All of the offered load is accepted right up to saturation —")
    print("on benign traffic the flattened butterfly behaves like a")
    print("butterfly at half the cost of a folded Clos.")


if __name__ == "__main__":
    main()
