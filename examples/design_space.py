"""Design-space tour: picking a flattened butterfly for your machine.

Walks the design decisions of Sections 5.1 and 2.3:

1. fixed radix — given radix-k routers, the smallest dimensionality
   that reaches the target size (Section 5.1.2);
2. fixed size — every (k, n) with k**n = N, and why the highest radix
   wins (Table 4 / Figures 12-13);
3. extra ports — the Figure 14 variants: redundant channels and
   expanded scalability, both simulated;
4. the generalized hypercube — what concentration buys (Section 2.3).

Run with::

    python examples/design_space.py
"""

from repro import (
    FlattenedButterfly,
    GeneralizedHypercube,
    MinimalAdaptive,
    SimulationConfig,
    Simulator,
    UniformRandom,
    flattened_butterfly_for_size,
)
from repro.analysis import effective_radix, fixed_radix_config, table4_configs
from repro.analysis.scaling import PackagedFlatConfig
from repro.cost import flattened_butterfly_census, price_census


def section(title: str) -> None:
    print()
    print(title)
    print("-" * len(title))


def main() -> None:
    section("1. Fixed radix: how far do radix-64 routers scale?")
    for target in (1024, 4096, 65536):
        cfg = fixed_radix_config(target, 64)
        print(
            f"  N >= {target:>6}: {cfg.k}-ary {cfg.n}-flat "
            f"(n'={cfg.n_prime}, k'={effective_radix(64, cfg.n_prime)}, "
            f"max {cfg.num_terminals} nodes)"
        )
    print("  Spare ports (k' < 64) can become redundant channels or more")
    print("  terminals — see part 3.")

    section("2. Fixed size: every way to build N=4096")
    print(f"  {'config':<16} {'k_prime':>7} {'n_prime':>7} {'cost $/node':>12}")
    for cfg in table4_configs(4096):
        census = flattened_butterfly_census(
            4096, config=PackagedFlatConfig(cfg.k, (cfg.k,) * cfg.n_prime)
        )
        priced = price_census(census)
        print(
            f"  {f'{cfg.k}-ary {cfg.n}-flat':<16} {cfg.k_prime:>7} "
            f"{cfg.n_prime:>7} {priced.cost_per_node:>12.1f}"
        )
    print("  The highest radix / lowest dimensionality is cheapest AND")
    print("  fastest (lowest hop count) — Figure 13's conclusion.")

    section("3. Figure 14: spending the extra ports")
    base = FlattenedButterfly(4, 2)
    redundant = FlattenedButterfly(4, 2, multiplicity=(2,))
    expanded = FlattenedButterfly(concentration=4, dims=(5,), k=4)
    for name, fb in (
        ("4-ary 2-flat (radix 7)", base),
        ("redundant channels (radix 10)", redundant),
        ("expanded to 5 routers (radix 8)", expanded),
    ):
        sim = Simulator(fb, MinimalAdaptive(), UniformRandom(), SimulationConfig())
        thr = sim.measure_saturation_throughput(warmup=600, measure=600)
        print(
            f"  {name:<32} N={fb.num_terminals:>3} "
            f"channels={len(fb.channels):>3} UR throughput={thr:.2f}"
        )
    print("  Redundant channels raise per-dimension bandwidth; the")
    print("  expanded organization trades them for four more nodes.")

    section("4. Generalized hypercube: what concentration buys")
    fb = FlattenedButterfly(32, 2)
    ghc = GeneralizedHypercube((8, 8, 16))
    for topo in (fb, ghc):
        print(
            f"  {topo.name:<16} routers={topo.num_routers:>5} "
            f"terminals/router={topo.concentration:>2} radix={topo.router_radix}"
        )
    print("  Same 1024 terminals; the GHC needs 32x the routers and pairs")
    print("  one terminal channel with 29 inter-router channels — the")
    print("  mismatch that made it uneconomical (Figure 3).")


if __name__ == "__main__":
    main()
