"""Low-radix vs high-radix: the paper's motivating comparison.

The introduction argues that k-ary n-cubes (SGI Origin 2000, Cray
T3E/XT3) cannot exploit modern >1 Tb/s router pin bandwidth: using it
demands many narrow ports — a high-radix router — and a topology built
for them.  This example puts numbers on that motivation by comparing a
classic torus against the flattened butterfly at the same node count:

* performance — zero-load latency and saturation throughput from the
  cycle-accurate simulator;
* economics — the Section 4 cost model, including cost per unit of
  delivered bandwidth.

Run with::

    python examples/low_vs_high_radix.py
"""

from repro import (
    ClosAD,
    FlattenedButterfly,
    SimulationConfig,
    Simulator,
    UniformRandom,
)
from repro.cost import flattened_butterfly_census, price_census, torus_census
from repro.topologies import Torus, TorusDOR

N = 64  # 4-ary 3-cube torus vs 8-ary 2-flat


def measure(topology, algorithm):
    low = Simulator(
        topology, algorithm, UniformRandom(), SimulationConfig(seed=3)
    ).run_open_loop(0.1, warmup=600, measure=600, drain_max=20_000)
    sat = Simulator(
        topology, algorithm, UniformRandom(), SimulationConfig(seed=3)
    ).measure_saturation_throughput(warmup=800, measure=800)
    return low.latency.mean, low.mean_hops, sat


def main() -> None:
    torus = Torus((4, 4, 4))
    flat = FlattenedButterfly(8, 2)
    print(f"Two {N}-node networks:")
    print(f"  {torus.name:<22} radix {torus.router_radix:>2}, "
          f"{torus.num_routers} routers, diameter {torus.diameter()}")
    print(f"  {flat.name:<22} radix {flat.router_radix:>2}, "
          f"{flat.num_routers} routers, diameter {flat.diameter()}")
    print()

    print("Performance (uniform random traffic):")
    print(f"  {'network':<22} {'latency@0.1':>11} {'avg hops':>9} {'saturation':>10}")
    t_lat, t_hops, t_sat = measure(Torus((4, 4, 4)), TorusDOR())
    f_lat, f_hops, f_sat = measure(FlattenedButterfly(8, 2), ClosAD())
    print(f"  {torus.name:<22} {t_lat:>11.2f} {t_hops:>9.2f} {t_sat:>10.3f}")
    print(f"  {flat.name:<22} {f_lat:>11.2f} {f_hops:>9.2f} {f_sat:>10.3f}")
    print()
    print(f"  The torus needs ~{t_hops / max(f_hops, 0.01):.0f}x the hops; every hop")
    print("  is a router traversal, so latency scales with diameter.")
    print()

    print("Economics (Section 4 cost model):")
    t_cost = price_census(torus_census((4, 4, 4)))
    f_cost = price_census(flattened_butterfly_census(N))
    print(f"  {'network':<22} {'$/node':>8} {'routers $/node':>14} {'links $/node':>13}")
    for name, c in ((torus.name, t_cost), (flat.name, f_cost)):
        print(
            f"  {name:<22} {c.cost_per_node:>8.1f} {c.router_cost / N:>14.1f} "
            f"{c.link_cost / N:>13.1f}"
        )
    print()
    print("  The torus gets the cheap cables it is famous for, but one")
    print("  low-pin router per node leaves its fixed router cost unamortized:")
    print("  concentration — many terminals per high-radix router — is what")
    print("  makes the flattened butterfly cost-efficient, the same lesson")
    print("  as the paper's generalized-hypercube comparison (Figure 3).")


if __name__ == "__main__":
    main()
