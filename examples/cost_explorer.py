"""Cost and power explorer: Section 4 and 5.3 of the paper as a tool.

Sweeps network size and prints the dollar cost per node and power per
node of the four topologies, the flattened butterfly's cost breakdown,
and the design chosen at every size — the analysis behind Figures 10,
11, and 15.

Run with::

    python examples/cost_explorer.py [max_nodes_pow2]
"""

import sys

from repro.analysis import packaged_config
from repro.cost import (
    butterfly_census,
    flattened_butterfly_census,
    folded_clos_census,
    hypercube_census,
    price_census,
)
from repro.power import power_census


def main() -> None:
    max_exp = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    sizes = [2**e for e in range(6, max_exp + 1)]

    print("Flattened-butterfly designs chosen per size (radix-64 budget):")
    print(f"  {'N':>6}  {'c':>3}  {'dims':<14} {'mult':<11} {'radix':>5}")
    for n in sizes:
        cfg = packaged_config(n)
        print(
            f"  {n:>6}  {cfg.concentration:>3}  {str(cfg.dims):<14} "
            f"{str(cfg.multiplicity):<11} {cfg.router_radix:>5}"
        )
    print()

    print("Cost per node ($) — Figure 11:")
    print(f"  {'N':>6} {'FB':>8} {'butterfly':>9} {'Clos':>8} {'hypercube':>9}  {'FB vs Clos':>10}")
    for n in sizes:
        fb = price_census(flattened_butterfly_census(n))
        fly = price_census(butterfly_census(n))
        clos = price_census(folded_clos_census(n))
        cube = price_census(hypercube_census(n))
        saving = 1 - fb.cost_per_node / clos.cost_per_node
        print(
            f"  {n:>6} {fb.cost_per_node:>8.1f} {fly.cost_per_node:>9.1f} "
            f"{clos.cost_per_node:>8.1f} {cube.cost_per_node:>9.1f}  {saving:>9.0%}"
        )
    print()

    print("Flattened-butterfly cost breakdown ($/node):")
    print(f"  {'N':>6} {'routers':>8} {'terminal':>9} {'local':>7} {'global':>7} {'links%':>7}")
    for n in sizes:
        fb = price_census(flattened_butterfly_census(n))
        print(
            f"  {n:>6} {fb.router_cost / n:>8.2f} {fb.terminal_link_cost / n:>9.2f} "
            f"{fb.local_link_cost / n:>7.2f} {fb.global_link_cost / n:>7.2f} "
            f"{fb.link_fraction:>7.0%}"
        )
    print()

    print("Power per node (W) — Figure 15:")
    print(f"  {'N':>6} {'FB':>7} {'butterfly':>9} {'Clos':>7} {'hypercube':>9}")
    for n in sizes:
        fb = power_census(flattened_butterfly_census(n))
        fly = power_census(butterfly_census(n))
        clos = power_census(folded_clos_census(n))
        cube = power_census(hypercube_census(n))
        print(
            f"  {n:>6} {fb.watts_per_node:>7.2f} {fly.watts_per_node:>9.2f} "
            f"{clos.watts_per_node:>7.2f} {cube.watts_per_node:>9.2f}"
        )
    print()
    print("Links dominate network cost, and global cables dominate links —")
    print("halving the number of global cables is where the flattened")
    print("butterfly's 35-53% saving over the folded Clos comes from.")


if __name__ == "__main__":
    main()
